// Read-routing grid: the replica chain as a read-scaling cache tier. A
// grid of (replica count × staleness bound) cells, each measuring read
// throughput against a live primary + N-replica topology with a
// background writer keeping the replication stream hot. Every node's
// handler sits behind a modeled capacity gate (slot semaphore + fixed
// service time), so serving reads from two replicas instead of one
// primary shows up as real throughput on a single benchmark machine —
// and the per-tier served counters show where every read landed.
package experiments

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"quaestor/internal/client"
	"quaestor/internal/document"
	"quaestor/internal/metrics"
	"quaestor/internal/replication"
	"quaestor/internal/server"
	"quaestor/internal/store"
)

// readRoutingDocs is the preloaded corpus per topology.
const readRoutingDocs = 2_000

// readRoutingReplicas is the scale-out axis; 0 replicas is the
// primary-only baseline each bound's speedup is measured against.
var readRoutingReplicas = []int{0, 1, 2}

// readRoutingBounds: 0 demands primary-equivalence (must cost nothing vs
// the baseline beyond noise), 1s tolerates one heartbeat of replica lag
// (the replication stream's idle staleness resolution is 500ms).
var readRoutingBounds = []time.Duration{0, time.Second}

// Node capacity model: each node serves at most rrSlots requests
// concurrently, each costing rrServiceTime. One node therefore caps near
// slots/service ops/s, and adding replica nodes adds real capacity. The
// service time is deliberately large relative to the in-process request
// CPU cost (~0.7ms on a small CI core) so per-node capacity — not the
// benchmark host's single core — is the binding constraint; otherwise the
// grid would measure the host, not the topology.
const (
	rrSlots       = 2
	rrServiceTime = 5 * time.Millisecond
)

// rrParallelism multiplies GOMAXPROCS into the reader worker count —
// enough pressure to saturate every node's slots even on one core.
const rrParallelism = 12

// ReadRoutingCell is one measured grid point.
type ReadRoutingCell struct {
	Replicas    int     `json:"replicas"`
	BoundMs     float64 `json:"boundMs"`
	Workers     int     `json:"workers"`
	NsOp        int64   `json:"nsOp"`
	ReadsPerSec float64 `json:"readsPerSec"`
	// SpeedupVsPrimaryOnly is this cell's read throughput over the
	// 0-replica cell at the same bound — the read-scaling headline.
	SpeedupVsPrimaryOnly float64 `json:"speedupVsPrimaryOnly"`
	// Tier shares: fraction of the session's served reads answered by
	// each tier (client cache is disabled in this harness, so primary +
	// replica sum to 1).
	PrimaryShare float64 `json:"primaryShare"`
	ReplicaShare float64 `json:"replicaShare"`
	// PrimaryReads counts requests the primary actually served during the
	// cell (its CPU proxy); StalenessRejects counts replica-side 412s,
	// StalenessRetries the client-side re-routes they caused.
	PrimaryReads     uint64 `json:"primaryReads"`
	StalenessRejects uint64 `json:"stalenessRejects"`
	StalenessRetries uint64 `json:"stalenessRetries"`
}

// ReadRoutingResult is the full grid run, JSON-marshalable for BENCH
// files.
type ReadRoutingResult struct {
	Docs      int               `json:"docs"`
	Slots     int               `json:"slotsPerNode"`
	ServiceUs int64             `json:"serviceTimeUs"`
	Cells     []ReadRoutingCell `json:"cells"`
}

// capacityHandler is the per-node capacity gate.
type capacityHandler struct {
	inner http.Handler
	slots chan struct{}
}

func newCapacityHandler(inner http.Handler) *capacityHandler {
	return &capacityHandler{inner: inner, slots: make(chan struct{}, rrSlots)}
}

func (h *capacityHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.slots <- struct{}{}
	defer func() { <-h.slots }()
	time.Sleep(rrServiceTime)
	h.inner.ServeHTTP(w, r)
}

// rrTopology is one primary + N-replica deployment with capacity-gated
// client-facing handlers. The replication feed runs over a real socket
// (the stream needs a flushing writer) and bypasses the gate: the model
// prices client serving, not log shipping.
type rrTopology struct {
	primaryURL string
	db         *store.Store
	srv        *server.Server
	feed       *httptest.Server
	replicas   []*replication.Replica
	replSrvs   []*server.Server
	replDBs    []*store.Store
	handlers   map[string]http.Handler
	closers    []func()
}

func (t *rrTopology) close() {
	for i := len(t.closers) - 1; i >= 0; i-- {
		t.closers[i]()
	}
}

func rrOpen(nReplicas, docs int) (*rrTopology, error) {
	t := &rrTopology{primaryURL: "http://primary", handlers: map[string]http.Handler{}}
	t.db = store.MustOpen(nil)
	t.srv = server.New(t.db, nil)
	t.closers = append(t.closers, t.db.Close, t.srv.Close)
	if err := t.db.CreateTable("docs"); err != nil {
		t.close()
		return nil, err
	}
	for i := 0; i < docs; i++ {
		doc := document.New(fmt.Sprintf("k%06d", i), map[string]any{"rank": int64(i)})
		if err := t.db.Insert("docs", doc); err != nil {
			t.close()
			return nil, err
		}
	}
	t.handlers[t.primaryURL] = newCapacityHandler(t.srv.Handler())
	t.feed = httptest.NewServer(t.srv.Handler())
	t.closers = append(t.closers, t.feed.Close)

	var urls []string
	for i := 0; i < nReplicas; i++ {
		url := fmt.Sprintf("http://replica-%d", i)
		rdb := store.MustOpen(nil)
		repl := replication.New(replication.Options{
			Store:      rdb,
			Primary:    t.feed.URL,
			Name:       fmt.Sprintf("bench-r%d", i),
			MinBackoff: 5 * time.Millisecond,
			MaxBackoff: 100 * time.Millisecond,
		})
		repl.Run()
		rsrv := server.New(rdb, nil)
		rsrv.AttachReplica(repl)
		t.closers = append(t.closers, rdb.Close, repl.Stop, rsrv.Close)
		t.handlers[url] = newCapacityHandler(rsrv.Handler())
		t.replicas = append(t.replicas, repl)
		t.replSrvs = append(t.replSrvs, rsrv)
		t.replDBs = append(t.replDBs, rdb)
		urls = append(urls, url)
	}
	t.srv.SetReplicaEndpoints(t.primaryURL, urls)

	// Replicas must be provably caught up before measuring, or the first
	// bounded reads all divert to the primary and understate the tier.
	deadline := time.Now().Add(30 * time.Second)
	for _, repl := range t.replicas {
		for {
			st := repl.Status()
			if st.State == replication.StateStreaming && st.StalenessMs >= 0 && st.LastSeq >= t.db.LastSeq() {
				break
			}
			if time.Now().After(deadline) {
				t.close()
				return nil, fmt.Errorf("replica %s never caught up: %+v", repl.Status().Primary, st)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	return t, nil
}

// ReadRouting measures every (replicas × bound) cell at the given scale.
func ReadRouting(sc Scale) (*ReadRoutingResult, error) {
	docs := sc.count(readRoutingDocs)
	result := &ReadRoutingResult{
		Docs:      docs,
		Slots:     rrSlots,
		ServiceUs: rrServiceTime.Microseconds(),
	}
	baseline := map[time.Duration]float64{}
	for _, nRepl := range readRoutingReplicas {
		topo, err := rrOpen(nRepl, docs)
		if err != nil {
			return nil, err
		}
		for _, bound := range readRoutingBounds {
			cell, err := rrMeasure(topo, nRepl, bound, docs)
			if err != nil {
				topo.close()
				return nil, err
			}
			if nRepl == 0 {
				baseline[bound] = cell.ReadsPerSec
			}
			if base := baseline[bound]; base > 0 {
				cell.SpeedupVsPrimaryOnly = cell.ReadsPerSec / base
			}
			result.Cells = append(result.Cells, *cell)
		}
		topo.close()
	}
	return result, nil
}

// rrMeasure runs one cell: a background writer keeps the replication
// stream hot (and the primary's write path busy) while gated readers
// measure bounded-read throughput.
func rrMeasure(topo *rrTopology, nRepl int, bound time.Duration, docs int) (*ReadRoutingCell, error) {
	transport := client.NewHostMapTransport(topo.handlers)
	writer, err := client.Dial(&client.Options{
		BaseURL: topo.primaryURL, Transport: transport, DisableCache: true,
	})
	if err != nil {
		return nil, err
	}
	reader, err := client.Dial(&client.Options{
		BaseURL: topo.primaryURL, Transport: transport, DisableCache: true,
		DiscoverReplicas: true,
	})
	if err != nil {
		return nil, err
	}

	primaryBefore := topo.srv.Stats()
	var rejectsBefore uint64
	for _, rs := range topo.replSrvs {
		rejectsBefore += rs.Stats().StalenessRejects
	}

	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		wrng := rand.New(rand.NewSource(1))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := fmt.Sprintf("k%06d", wrng.Intn(docs))
			doc := document.New(id, map[string]any{"rank": int64(i)})
			if err := writer.Put("docs", doc); err != nil {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	opts := client.WithMaxStaleness(bound)
	var seed int64
	res := testing.Benchmark(func(b *testing.B) {
		b.SetParallelism(rrParallelism)
		b.RunParallel(func(pb *testing.PB) {
			rng := rand.New(rand.NewSource(atomic.AddInt64(&seed, 1)))
			for pb.Next() {
				id := fmt.Sprintf("k%06d", rng.Intn(docs))
				if _, err := reader.ReadWith("docs", id, opts); err != nil {
					b.Error(err)
					return
				}
			}
		})
	})
	close(stop)
	<-writerDone

	st := reader.Stats()
	primaryAfter := topo.srv.Stats()
	var rejectsAfter uint64
	for _, rs := range topo.replSrvs {
		rejectsAfter += rs.Stats().StalenessRejects
	}

	cell := &ReadRoutingCell{
		Replicas:         nRepl,
		BoundMs:          float64(bound) / float64(time.Millisecond),
		Workers:          rrParallelism * runtime.GOMAXPROCS(0),
		NsOp:             res.NsPerOp(),
		PrimaryReads:     primaryAfter.ServedPrimary - primaryBefore.ServedPrimary,
		StalenessRejects: rejectsAfter - rejectsBefore,
		StalenessRetries: st.StalenessRetries,
	}
	if cell.NsOp > 0 {
		cell.ReadsPerSec = 1e9 / float64(cell.NsOp)
	}
	if total := st.ReadsByTier.Primary + st.ReadsByTier.Replica + st.ReadsByTier.ClientCache; total > 0 {
		cell.PrimaryShare = float64(st.ReadsByTier.Primary) / float64(total)
		cell.ReplicaShare = float64(st.ReadsByTier.Replica) / float64(total)
	}
	return cell, nil
}

// Table renders the grid as the summary table the bench runner prints.
func (r *ReadRoutingResult) Table() string {
	tbl := metrics.NewTable("replicas", "bound", "ns/op", "reads/sec", "vs-primary-only", "primary-share", "replica-share", "412s")
	for _, c := range r.Cells {
		tbl.AddRow(
			fmt.Sprintf("%d", c.Replicas),
			fmt.Sprintf("%.0fms", c.BoundMs),
			fmtNs(c.NsOp),
			fmt.Sprintf("%.0f", c.ReadsPerSec),
			fmt.Sprintf("%.2fx", c.SpeedupVsPrimaryOnly),
			fmt.Sprintf("%.0f%%", c.PrimaryShare*100),
			fmt.Sprintf("%.0f%%", c.ReplicaShare*100),
			fmt.Sprintf("%d", c.StalenessRejects),
		)
	}
	return tbl.String()
}

// ReadRoutingReport runs the grid, optionally writes the machine-readable
// JSON record to outPath, and returns the formatted summary.
func ReadRoutingReport(sc Scale, outPath string) string {
	r, err := ReadRouting(sc)
	if err != nil {
		return fmt.Sprintf("readrouting failed: %v\n", err)
	}
	out := section(fmt.Sprintf(
		"Read routing grid — bounded-read throughput vs replica count (%d docs, %d slots × %dµs per node)",
		r.Docs, r.Slots, r.ServiceUs), r.Table())
	if outPath != "" {
		data, err := json.MarshalIndent(r, "", "  ")
		if err == nil {
			err = os.WriteFile(outPath, append(data, '\n'), 0o644)
		}
		if err != nil {
			out += fmt.Sprintf("write %s: %v\n", outPath, err)
		} else {
			out += fmt.Sprintf("wrote %s\n", outPath)
		}
	}
	return out
}
