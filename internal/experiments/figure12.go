package experiments

import (
	"fmt"
	"sync"
	"time"

	"quaestor/internal/document"
	"quaestor/internal/invalidb"
	"quaestor/internal/metrics"
	"quaestor/internal/query"
	"quaestor/internal/store"
)

// Figure 12 measures InvaliDB's sustainable matching throughput under p99
// notification-latency bounds for growing cluster sizes. As in the paper,
// every matching node is assigned the same relative load (500 active
// queries per node per step) and the insert rate is constant, so total
// matching throughput — match evaluations per second = inserts/s × active
// queries — grows with the query count until latency explodes. Reported is
// the highest throughput whose measured p99 stayed within each bound.

// fig12Result records the best sustained throughput per latency bound for
// one cluster size.
type fig12Result struct {
	nodes      int
	throughput map[time.Duration]float64 // bound -> max sustained evals/s
}

// matchingGrid shapes a node count into a (rows × cols) grid close to
// square, favouring query partitions, as the paper scales query load.
func matchingGrid(nodes int) (rows, cols int) {
	cols = 1
	for cols*cols < nodes {
		cols++
	}
	for nodes%cols != 0 {
		cols--
	}
	rows = nodes / cols
	if rows > cols {
		rows, cols = cols, rows
	}
	return rows, cols
}

// runInvalidbStep measures notification p99 latency and match-eval
// throughput at one load point.
func runInvalidbStep(nodes, queries, inserts int) (p99 time.Duration, evalsPerSec float64) {
	rows, cols := matchingGrid(nodes)
	db := store.MustOpen(&store.Options{ShardsPerTable: 8})
	defer db.Close()
	const table = "posts"
	if err := db.CreateTable(table); err != nil {
		panic(err)
	}
	cluster := invalidb.NewCluster(&invalidb.Config{
		QueryPartitions:  cols,
		ObjectPartitions: rows,
		Buffer:           8192,
	})
	defer cluster.Stop()

	hist := metrics.NewHistogram()
	var histMu sync.Mutex
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for n := range cluster.Notifications() {
			histMu.Lock()
			hist.Observe(n.DetectedAt.Sub(n.EventTime))
			histMu.Unlock()
		}
	}()

	// Register the queries: each matches one tag value. Inserted documents
	// carry a rotating tag so a predictable fraction of queries match.
	for i := 0; i < queries; i++ {
		q := query.New(table, query.Contains("tags", fmt.Sprintf("t%06d", i)))
		if err := cluster.Activate(invalidb.Registration{Query: q, Mask: invalidb.MaskObjectList}); err != nil {
			panic(err)
		}
	}

	detach := cluster.AttachStore(db)
	defer detach()

	start := time.Now()
	for i := 0; i < inserts; i++ {
		doc := document.New(fmt.Sprintf("d%08d", i), map[string]any{
			"tags": []any{fmt.Sprintf("t%06d", i%queries)},
			"n":    int64(i),
		})
		if err := db.Insert(table, doc); err != nil {
			panic(err)
		}
	}
	cluster.Quiesce(30 * time.Second)
	elapsed := time.Since(start)

	// Every insert is evaluated against every active query somewhere in the
	// grid: that is the matching work the paper's ops/s counts.
	evals := float64(inserts) * float64(queries)
	histMu.Lock()
	p99ms := hist.Percentile(0.99)
	histMu.Unlock()
	// Give the drain goroutine its channel back on Stop (deferred).
	_ = drained
	return time.Duration(p99ms * float64(time.Millisecond)), evals / elapsed.Seconds()
}

// Figure12 sweeps cluster sizes 1..16 matching nodes, growing the active
// query count in 500-queries-per-node steps until the latency bound is
// violated, and reports the best sustained throughput per bound.
func Figure12(sc Scale) string {
	nodeCounts := []int{1, 2, 4, 8, 16}
	bounds := []time.Duration{15 * time.Millisecond, 20 * time.Millisecond, 25 * time.Millisecond}
	queriesPerNodeStep := 500
	maxSteps := 6
	inserts := 2000
	if sc < FullScale {
		queriesPerNodeStep = 100
		maxSteps = 4
		inserts = 500
		nodeCounts = []int{1, 2, 4, 8}
	}

	results := make([]fig12Result, 0, len(nodeCounts))
	for _, nodes := range nodeCounts {
		res := fig12Result{nodes: nodes, throughput: map[time.Duration]float64{}}
		for step := 1; step <= maxSteps; step++ {
			queries := step * queriesPerNodeStep * nodes
			p99, tput := runInvalidbStep(nodes, queries, inserts)
			for _, b := range bounds {
				if p99 <= b && tput > res.throughput[b] {
					res.throughput[b] = tput
				}
			}
			if p99 > bounds[len(bounds)-1]*4 {
				break // saturated: latency spikes mark system capacity
			}
		}
		results = append(results, res)
	}

	tbl := metrics.NewTable("matching-nodes", "p99<=15ms (evals/s)", "p99<=20ms", "p99<=25ms", "per-node@25ms")
	for _, r := range results {
		best := r.throughput[bounds[2]]
		tbl.AddRow(fmt.Sprintf("%d", r.nodes),
			fmt.Sprintf("%.2fM", r.throughput[bounds[0]]/1e6),
			fmt.Sprintf("%.2fM", r.throughput[bounds[1]]/1e6),
			fmt.Sprintf("%.2fM", best/1e6),
			fmt.Sprintf("%.2fM", best/float64(r.nodes)/1e6))
	}
	return section("Figure 12 — InvaliDB matching throughput vs cluster size under p99 latency bounds", tbl.String())
}
