package experiments

import (
	"strings"
	"testing"
)

// tiny keeps experiment smoke tests fast: every figure function must run
// end-to-end and produce its table.
const tiny = Scale(0.01)

func checkTable(t *testing.T, out string, wantCols ...string) {
	t.Helper()
	if !strings.HasPrefix(out, "== ") {
		t.Fatalf("missing section header:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 4 {
		t.Fatalf("table too short:\n%s", out)
	}
	for _, col := range wantCols {
		if !strings.Contains(out, col) {
			t.Errorf("output missing column %q:\n%s", col, out)
		}
	}
}

func TestFigure1(t *testing.T) {
	out := Figure1()
	checkTable(t, out, "Baqend", "Firebase", "Sydney")
	// Structural property: Baqend's Sydney load must beat every
	// non-caching provider's Sydney load.
	for _, r := range regions {
		base := pageLoad(providers[0], r)
		for _, p := range providers[1:] {
			if got := pageLoad(p, r); got <= base {
				t.Errorf("%s in %s (%.0fms) should be slower than Baqend (%.0fms)", p.name, r.name, got, base)
			}
		}
	}
}

func TestFigure8a(t *testing.T) {
	if testing.Short() {
		t.Skip("slow simulator reproduction")
	}
	checkTable(t, Figure8a(tiny), "quaestor", "uncached", "speedup")
}

func TestFigure8bAnd8c(t *testing.T) {
	if testing.Short() {
		t.Skip("slow simulator reproduction")
	}
	checkTable(t, Figure8b(tiny), "connections", "cdn-only")
	checkTable(t, Figure8c(tiny), "connections", "ebf-only")
}

func TestFigure8d(t *testing.T) {
	checkTable(t, Figure8d(tiny), "query-latency-ms", "read-latency-ms")
}

func TestFigure8e(t *testing.T) {
	checkTable(t, Figure8e(tiny), "client/queries", "cdn/reads")
}

func TestFigure8f(t *testing.T) {
	out := Figure8f(tiny)
	checkTable(t, out, "client hit", "CDN hit", "miss")
}

func TestFigure9(t *testing.T) {
	if testing.Short() {
		t.Skip("slow simulator reproduction")
	}
	checkTable(t, Figure9(tiny), "update-rate", "100k obj/1k queries/1s")
}

func TestFigure10(t *testing.T) {
	if testing.Short() {
		t.Skip("slow simulator reproduction")
	}
	checkTable(t, Figure10(tiny), "refresh-s", "100cl/queries")
}

func TestFigure11(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	checkTable(t, Figure11(tiny), "estimated-ttl-s", "true-ttl-s")
}

func TestFigure12(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	checkTable(t, Figure12(tiny), "matching-nodes", "p99<=15ms")
}

func TestTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	out := Table1(tiny)
	checkTable(t, out, "documents", "queries")
	if strings.Contains(out, "10000000") {
		t.Error("the 10M row must be reserved for FullScale runs")
	}
}

func TestAblations(t *testing.T) {
	checkTable(t, AblationCoherence(tiny), "EBF coherence", "static TTLs")
	checkTable(t, AblationTTL(tiny), "quantile", "alpha")
}

func TestMatchingGridShapes(t *testing.T) {
	cases := map[int][2]int{1: {1, 1}, 2: {1, 2}, 4: {2, 2}, 8: {2, 4}, 16: {4, 4}}
	for nodes, want := range cases {
		rows, cols := matchingGrid(nodes)
		if rows*cols != nodes {
			t.Errorf("grid for %d nodes = %dx%d", nodes, rows, cols)
		}
		if rows != want[0] || cols != want[1] {
			t.Errorf("grid for %d = %dx%d, want %dx%d", nodes, rows, cols, want[0], want[1])
		}
	}
}

func TestScaleHelpers(t *testing.T) {
	if QuickScale.count(1000) != 100 {
		t.Errorf("count = %d", QuickScale.count(1000))
	}
	if Scale(0.0001).count(100) != 1 {
		t.Error("count must stay positive")
	}
	if got := Scale(0.001).duration(1000e9); got.Seconds() != 2 {
		t.Errorf("duration floor = %v", got)
	}
}
