package experiments

import (
	"fmt"
	"os"
	"sync"
	"time"

	"quaestor/internal/document"
	"quaestor/internal/metrics"
	"quaestor/internal/store"
	"quaestor/internal/wal"
)

// durabilityModes are the write-path configurations Durability compares.
// Empty fsync means in-memory (no WAL at all).
var durabilityModes = []struct {
	name  string
	fsync string
}{
	{"memory", ""},
	{"wal-never", "never"},
	{"wal-interval", "interval"},
	{"wal-always", "always"},
}

// Durability measures end-to-end write throughput of the store across
// durability modes: pure in-memory versus the WAL under each fsync
// policy, at 1 and 64 concurrent writers. It also reports the group
// committer's fsyncs-per-write ratio, the batching that makes
// fsync=always affordable. mode filters the comparison ("all" or one of
// memory, never, interval, always).
func Durability(sc Scale, mode string) string {
	docsPerWriter := sc.count(4000)
	tbl := metrics.NewTable("mode", "writers", "writes", "writes/s", "fsyncs/write", "mean-batch")
	for _, m := range durabilityModes {
		if mode != "all" && mode != m.name && "wal-"+mode != m.name {
			continue
		}
		for _, writers := range []int{1, 64} {
			row, err := runDurabilityCell(m.name, m.fsync, writers, docsPerWriter)
			if err != nil {
				tbl.AddRow(m.name, fmt.Sprint(writers), "error: "+err.Error(), "", "", "")
				continue
			}
			tbl.AddRow(row...)
		}
	}
	return section("Durability — write throughput: in-memory vs WAL fsync policies (group commit)", tbl.String())
}

func runDurabilityCell(name, fsync string, writers, docsPerWriter int) ([]string, error) {
	opts := &store.Options{}
	if fsync != "" {
		dir, err := os.MkdirTemp("", "quaestor-durability-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		policy, err := wal.ParseFsyncPolicy(fsync)
		if err != nil {
			return nil, err
		}
		opts.DataDir = dir
		opts.Durability = store.Durability{Fsync: policy}
	}
	s, err := store.Open(opts)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	if err := s.CreateTable("bench"); err != nil {
		return nil, err
	}

	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < docsPerWriter; i++ {
				doc := document.New(fmt.Sprintf("w%d-%d", w, i), map[string]any{"n": int64(i), "w": int64(w)})
				if err := s.Insert("bench", doc); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		return nil, err
	default:
	}

	writes := writers * docsPerWriter
	fsyncsPerWrite, meanBatch := 0.0, 0.0
	if st, ok := s.DurabilityStats(); ok {
		fsyncsPerWrite = float64(st.WAL.Fsyncs) / float64(writes)
		meanBatch = st.WAL.MeanBatch
	}
	return []string{
		name,
		fmt.Sprint(writers),
		fmt.Sprint(writes),
		fmt.Sprintf("%.0f", float64(writes)/elapsed.Seconds()),
		fmt.Sprintf("%.4f", fsyncsPerWrite),
		fmt.Sprintf("%.1f", meanBatch),
	}, nil
}
