package experiments

import (
	"fmt"
	"time"

	"quaestor/internal/metrics"
)

// Figure 1 compares first-load page latency of a data-driven news site
// across Backend-as-a-Service providers and client locations. The paper
// loads the site with a cold browser cache and a warm CDN cache; the
// non-caching providers answer every request from their single home region.
//
// We reproduce the experiment as a page-load model over measured-style RTT
// constants: the page issues one query plus 25 record reads (a typical
// data-driven page) over six parallel browser connections, plus connection
// setup (DNS + TCP + TLS ≈ 4 RTTs on first load) and per-request backend
// processing for the uncached providers. Provider profiles capture the one
// structural difference the paper demonstrates: Baqend/Quaestor serves from
// the nearest CDN edge, everyone else from their home region.

// region is a client location with RTTs (ms, round-trip) to each provider
// home and to the nearest CDN edge. Values follow typical inter-region
// measurements (and the paper's 145 ms Ireland↔California figure).
type region struct {
	name   string
	toEdge float64 // nearest CDN edge
	toUSE  float64 // US-East homes (Parse, Kinvey, Azure)
	toUSC  float64 // US-Central home (Firebase)
	toEU   float64 // EU home (Baqend origin, for cache misses)
}

var regions = []region{
	{"Frankfurt", 5, 95, 115, 15},
	{"California", 8, 75, 45, 150},
	{"Sydney", 20, 205, 185, 290},
	{"Tokyo", 12, 165, 135, 230},
}

// provider describes one BaaS profile.
type provider struct {
	name string
	// homeRTT selects the applicable home-region RTT for a client region.
	homeRTT func(r region) float64
	// cached providers serve from the CDN edge with a warm cache.
	cached bool
	// processing is per-request backend time (ms) — DBaaS query handling,
	// auth, rendering. Cached responses skip it.
	processing float64
}

var providers = []provider{
	{"Baqend", func(r region) float64 { return r.toEU }, true, 10},
	{"Kinvey", func(r region) float64 { return r.toUSE }, false, 35},
	{"Firebase", func(r region) float64 { return r.toUSC }, false, 25},
	{"Azure", func(r region) float64 { return r.toUSE }, false, 45},
	{"Parse", func(r region) float64 { return r.toUSE }, false, 30},
}

const (
	pageRequests    = 26 // 1 query + 25 records
	parallelConns   = 6  // browser connection limit
	setupRoundTrips = 4  // DNS + TCP + TLS + initial HTML
)

// pageLoad models the first-load latency in milliseconds.
func pageLoad(p provider, r region) float64 {
	rtt := p.homeRTT(r)
	perReq := rtt + p.processing
	if p.cached {
		// Warm CDN: all data requests are edge hits; only the EBF bootstrap
		// and cache misses (none on a warm edge) travel to the origin.
		rtt = r.toEdge
		perReq = rtt + 1 // edge lookup ~1 ms
	}
	setup := setupRoundTrips * rtt
	rounds := (pageRequests + parallelConns - 1) / parallelConns
	return setup + float64(rounds)*perReq
}

// Figure1 prints the provider × region page-load comparison.
func Figure1() string {
	header := []string{"region"}
	for _, p := range providers {
		header = append(header, p.name)
	}
	tbl := metrics.NewTable(header...)
	for _, r := range regions {
		row := []string{r.name}
		for _, p := range providers {
			row = append(row, fmt.Sprintf("%.2fs", pageLoad(p, r)/1000*factorToSeconds))
		}
		tbl.AddRow(row...)
	}
	return section("Figure 1 — mean first-load latency by provider and region (warm CDN, cold browser cache)", tbl.String())
}

// factorToSeconds converts the modelled critical-path latency into
// wall-clock page load time: rendering, JS execution and request queueing
// multiply the pure network path (High Performance Browser Networking's
// rule of thumb for data-driven pages).
const factorToSeconds = 4.0

var _ = time.Second
