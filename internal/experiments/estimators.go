package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"quaestor/internal/metrics"
	"quaestor/internal/ttl"
)

// AblationEstimators compares TTL-estimation strategies on synthetic
// Poisson write streams: Quaestor's Poisson/EWMA estimator versus the Alex
// protocol and fixed TTLs (Section 7 positions Quaestor against both).
//
// Method: for a population of records with heterogeneous write rates λi
// (drawn log-uniformly), we replay writes as a Poisson process, query each
// policy for a TTL after every write, and score the estimate against the
// actual time to the record's next write:
//
//	stale-seconds — expired too late: the record changed before the TTL
//	               ran out (staleness exposure per estimate);
//	waste-ratio  — expired too early: cacheable lifetime thrown away.
func AblationEstimators(sc Scale) string {
	type policyCase struct {
		name string
		mk   func(clock func() time.Time) ttl.Policy
	}
	cases := []policyCase{
		{"quaestor (p=0.7, α=0.5)", func(clock func() time.Time) ttl.Policy {
			return ttl.NewEstimator(&ttl.Config{Quantile: 0.7, Alpha: 0.5, Clock: clock, MinTTL: time.Millisecond})
		}},
		{"alex (20%)", func(clock func() time.Time) ttl.Policy {
			a := ttl.NewAlex(0.2, clock)
			a.MinTTL = time.Millisecond
			return a
		}},
		{"static 10s", func(func() time.Time) ttl.Policy { return ttl.NewStatic(10 * time.Second) }},
		{"static 60s", func(func() time.Time) ttl.Policy { return ttl.NewStatic(60 * time.Second) }},
	}

	records := sc.count(2000)
	writesPerRecord := 30
	tbl := metrics.NewTable("policy", "mean-abs-err-s", "stale-seconds/estimate", "waste-ratio")
	for _, pc := range cases {
		r := rand.New(rand.NewSource(17))
		now := time.Unix(0, 0)
		clock := func() time.Time { return now }
		policy := pc.mk(clock)

		var absErr, staleSeconds, waste float64
		var n int
		for rec := 0; rec < records; rec++ {
			key := fmt.Sprintf("t/r%05d", rec)
			// λ log-uniform in [0.01, 2) writes/s.
			lambda := math.Exp(r.Float64()*math.Log(200)) * 0.01
			for w := 0; w < writesPerRecord; w++ {
				gap := time.Duration(r.ExpFloat64() / lambda * float64(time.Second))
				policy.ObserveWrite(key)
				est := policy.RecordTTL(key)
				// The actual cacheable lifetime is the gap to the next write.
				diff := (est - gap).Seconds()
				absErr += math.Abs(diff)
				if diff > 0 {
					staleSeconds += diff // TTL outlived the data
				} else {
					waste += -diff / gap.Seconds() // lifetime discarded
				}
				n++
				now = now.Add(gap)
			}
		}
		tbl.AddRow(pc.name,
			fmt.Sprintf("%.2f", absErr/float64(n)),
			fmt.Sprintf("%.2f", staleSeconds/float64(n)),
			fmt.Sprintf("%.2f", waste/float64(n)))
	}
	return section("Ablation — TTL estimation policies on Poisson write streams", tbl.String())
}
