package experiments

import "testing"

func TestAblationEstimators(t *testing.T) {
	checkTable(t, AblationEstimators(tiny), "quaestor", "alex", "static")
}
