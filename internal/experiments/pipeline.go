package experiments

import (
	"fmt"
	"sync"
	"time"

	"quaestor/internal/document"
	"quaestor/internal/metrics"
	"quaestor/internal/store"
)

// Pipeline measures the ordered commit pipeline end to end: concurrent
// writers against an in-memory store while 1, 8 and 64 subscribers drain
// the change stream. Every subscriber must observe the complete stream
// in strict Seq order (violations fail the experiment); the table
// reports write throughput, aggregate delivery throughput, and the
// pipeline's publish→deliver latency, so fan-out regressions show up as
// a widening gap between the subscriber counts.
func Pipeline(sc Scale) string {
	docs := sc.count(30000)
	const writers = 16
	tbl := metrics.NewTable("subscribers", "writes", "writes/s", "delivered/s", "publish→deliver mean", "order-violations")
	for _, subs := range []int{1, 8, 64} {
		row, err := runPipelineCell(subs, writers, docs/writers)
		if err != nil {
			tbl.AddRow(fmt.Sprint(subs), "error: "+err.Error(), "", "", "", "")
			continue
		}
		tbl.AddRow(row...)
	}
	return section("Pipeline — ordered change-stream fan-out from the commit log", tbl.String())
}

func runPipelineCell(subs, writers, docsPerWriter int) ([]string, error) {
	s, err := store.Open(&store.Options{ChangeBuffer: 1 << 13})
	if err != nil {
		return nil, err
	}
	defer s.Close()
	if err := s.CreateTable("bench"); err != nil {
		return nil, err
	}

	total := uint64(writers * docsPerWriter)
	type subState struct {
		last       uint64
		count      uint64
		violations uint64
	}
	states := make([]subState, subs)
	var wgSubs sync.WaitGroup
	for i := 0; i < subs; i++ {
		ch, cancel := s.SubscribeNamed(fmt.Sprintf("bench-%d", i))
		defer cancel()
		st := &states[i]
		wgSubs.Add(1)
		go func() {
			defer wgSubs.Done()
			for ev := range ch {
				if ev.Seq <= st.last {
					st.violations++
				}
				st.last = ev.Seq
				st.count++
				if st.count == total {
					return
				}
			}
		}()
	}

	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < docsPerWriter; i++ {
				doc := document.New(fmt.Sprintf("w%d-%d", w, i), map[string]any{"n": int64(i)})
				if err := s.Insert("bench", doc); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	writeElapsed := time.Since(start)
	select {
	case err := <-errs:
		return nil, err
	default:
	}
	wgSubs.Wait() // every subscriber saw the full stream
	elapsed := time.Since(start)

	var violations uint64
	for i := range states {
		violations += states[i].violations
		if states[i].count != total {
			return nil, fmt.Errorf("subscriber %d saw %d/%d events", i, states[i].count, total)
		}
	}
	lat := s.PipelineStats().Stream.Latency
	return []string{
		fmt.Sprint(subs),
		fmt.Sprint(total),
		fmt.Sprintf("%.0f", float64(total)/writeElapsed.Seconds()),
		fmt.Sprintf("%.0f", float64(total)*float64(subs)/elapsed.Seconds()),
		fmt.Sprintf("%.0fµs", lat.MeanMicros),
		fmt.Sprint(violations),
	}, nil
}
