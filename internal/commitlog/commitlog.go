// Package commitlog implements Quaestor's ordered commit pipeline: the
// single place where committed writes become a change stream.
//
// Every write that commits — through the WAL's group committer on durable
// stores, or straight from the write path on in-memory stores — is handed
// to a Sequencer, which restores strict global Seq order (concurrent
// writers release their shard locks before committing, so events can
// arrive slightly out of order), and appended to a Log. The Log retains
// recent events in a ring and fans them out to any number of subscribers,
// each with its own delivery pump, so that every consumer — InvaliDB
// ingestion, SSE change feeds, the per-table replay rings, and (next) a
// log-shipping replica — observes exactly the same totally-ordered
// stream the WAL persists.
//
// Subscribers choose a delivery policy: Block applies backpressure to the
// appender once the subscriber is a full ring behind (the default for
// correctness-critical consumers like InvaliDB), while DropOldest lets
// the ring overwrite unread events and counts the gap (for best-effort
// consumers). Per-subscriber lag, drop counters and a publish→deliver
// latency histogram are exported through Stats.
package commitlog

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"quaestor/internal/document"
)

// ErrSeqTruncated is returned by Subscribe when the requested floor
// predates the fan-out ring's retention: events between fromSeq and the
// oldest retained event have been overwritten (or were published before
// this log opened), so a subscription could not be gapless. A replica
// receiving it must fall back to a coarser catch-up channel — shipped WAL
// segments, or a fresh snapshot bootstrap.
var ErrSeqTruncated = errors.New("commitlog: sequence truncated from fan-out ring")

// OpType identifies the kind of write that produced a change event.
type OpType int

// Write operation kinds carried on the change stream.
const (
	OpInsert OpType = iota
	OpUpdate
	OpDelete
	// OpCreateIndex is sequenced DDL: an index creation that consumed a
	// slot in the global write order, so replicas and late subscribers
	// learn new indexes live, in position, instead of only via
	// re-bootstrap. DDL events carry no document — After is nil and Path
	// names the indexed field.
	OpCreateIndex
)

// String implements fmt.Stringer.
func (o OpType) String() string {
	switch o {
	case OpInsert:
		return "insert"
	case OpUpdate:
		return "update"
	case OpDelete:
		return "delete"
	case OpCreateIndex:
		return "create-index"
	default:
		return fmt.Sprintf("OpType(%d)", int(o))
	}
}

// Event is one write's after-image as published on the change stream.
// For deletes, After carries the id with nil fields and Deleted is true.
type Event struct {
	Seq     uint64 // global, strictly increasing sequence number
	Table   string
	Op      OpType
	Deleted bool
	// Synthetic marks an event that does not correspond to a single
	// logged write: a snapshot import publishes the diff between the old
	// and imported state as synthetic events so local subscribers
	// (InvaliDB, SSE, replay rings) converge without waiting for organic
	// writes. Synthetic events share the snapshot floor as their Seq —
	// the one sanctioned exception to the strictly-increasing contract —
	// and are never re-logged to the WAL.
	Synthetic bool
	// Before is the pre-image (nil for inserts). After is the after-image
	// (content at Seq; for deletes only ID/Version are meaningful). Both
	// are deep copies and safe to retain.
	Before *document.Document
	After  *document.Document
	// Path is the indexed field path for OpCreateIndex events; empty on
	// document events.
	Path string
	Time time.Time
}

// Key returns the record's cache/EBF key ("table/id"). DDL events carry
// no document; their key is the table-level DDL key.
func (e *Event) Key() string {
	if e.After == nil {
		return e.Table + "/#index:" + e.Path
	}
	return e.Table + "/" + e.After.ID
}

// Policy selects how a subscriber behaves when it cannot keep up.
type Policy int

const (
	// Block applies backpressure: the appender stalls once this subscriber
	// is a full ring behind, so the subscriber never misses an event.
	Block Policy = iota
	// DropOldest lets the ring overwrite unread events; the subscriber
	// skips ahead to the oldest retained event and the gap is counted in
	// its Dropped statistic.
	DropOldest
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	if p == DropOldest {
		return "drop-oldest"
	}
	return "block"
}

// batchMax bounds how many events one delivery batch carries.
const batchMax = 256

// batchChanDepth is the per-subscriber batch channel buffer.
const batchChanDepth = 8

// Options configures a Log. The zero value is usable.
type Options struct {
	// Ring is the number of recent events retained for fan-out and
	// Subscribe(fromSeq) catch-up (default 4096).
	Ring int
	// ReplayPerTable sizes the per-table replay rings used for query
	// activation (default 4096).
	ReplayPerTable int
	// StartSeq is the sequence number of the last write already applied
	// before the log opened (recovery); subscribers tail from here.
	StartSeq uint64
	// Clock supplies timestamps for latency accounting (default time.Now).
	Clock func() time.Time
}

func (o *Options) withDefaults() Options {
	out := Options{Ring: 4096, ReplayPerTable: 4096, Clock: time.Now}
	if o == nil {
		return out
	}
	if o.Ring > 0 {
		out.Ring = o.Ring
	}
	if o.ReplayPerTable > 0 {
		out.ReplayPerTable = o.ReplayPerTable
	}
	out.StartSeq = o.StartSeq
	if o.Clock != nil {
		out.Clock = o.Clock
	}
	return out
}

// entry is one ring slot: the event plus its publish time.
type entry struct {
	ev Event
	at time.Time
}

// Log is the ordered fan-out core. Append accepts events in strictly
// increasing Seq order (the Sequencer enforces this) and never sends on
// subscriber channels itself; per-subscriber pump goroutines deliver
// batches, so one slow consumer cannot reorder or stall another.
type Log struct {
	opts Options

	mu    sync.Mutex
	data  *sync.Cond // signaled when events are appended or the log closes
	space *sync.Cond // signaled when cursors advance or subscribers leave
	ring  []entry
	pos   uint64 // next append position; retained range is [pos-len(ring), pos)

	lastSeq   uint64
	published uint64
	// truncSeq is the newest Seq no longer retained: StartSeq at open
	// (events up to it predate this log), then the Seq of each event the
	// ring overwrites. Subscribe can serve any floor >= truncSeq gaplessly.
	truncSeq uint64
	subs     map[int]*Subscription
	nextID   int
	closed   bool

	replays map[string]*ring

	lat latencyHist
}

// NewLog creates an empty commit log.
func NewLog(opts *Options) *Log {
	o := opts.withDefaults()
	l := &Log{
		opts:     o,
		ring:     make([]entry, o.Ring),
		lastSeq:  o.StartSeq,
		truncSeq: o.StartSeq,
		subs:     map[int]*Subscription{},
		replays:  map[string]*ring{},
	}
	l.data = sync.NewCond(&l.mu)
	l.space = sync.NewCond(&l.mu)
	return l
}

// LastSeq returns the sequence number of the newest appended event.
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastSeq
}

// ringFullLocked reports whether appending one more event would overwrite
// an event a Block-policy subscriber has not consumed yet.
func (l *Log) ringFullLocked() bool {
	n := uint64(len(l.ring))
	if l.pos < n {
		return false
	}
	for _, s := range l.subs {
		if s.policy == Block && l.pos-s.cursor >= n {
			return true
		}
	}
	return false
}

// Append publishes a batch of events. The caller must deliver events in
// strictly increasing Seq order across all Append calls — use a Sequencer
// when commit acknowledgements can arrive out of order. (The one
// exception is a Sequencer.PublishSynthetic batch, whose events share a
// snapshot floor as their Seq and are flagged Synthetic.) Append blocks
// only when a Block-policy subscriber is a full ring behind; on a closed
// log it is a no-op.
func (l *Log) Append(events []Event) {
	if len(events) == 0 {
		return
	}
	now := l.opts.Clock()
	l.mu.Lock()
	for i := range events {
		for !l.closed && l.ringFullLocked() {
			// Wake pumps first so a full ring is actually being drained.
			l.data.Broadcast()
			l.space.Wait()
		}
		if l.closed {
			l.mu.Unlock()
			return
		}
		ev := events[i]
		slot := l.pos % uint64(len(l.ring))
		if l.pos >= uint64(len(l.ring)) {
			// Overwriting the oldest retained event moves the truncation
			// horizon: floors below it can no longer be served gaplessly.
			l.truncSeq = l.ring[slot].ev.Seq
		}
		l.ring[slot] = entry{ev: ev, at: now}
		l.pos++
		l.lastSeq = ev.Seq
		l.published++
		r, ok := l.replays[ev.Table]
		if !ok {
			r = newRing(l.opts.ReplayPerTable)
			l.replays[ev.Table] = r
		}
		r.push(ev)
	}
	l.mu.Unlock()
	l.data.Broadcast()
}

// Truncate raises the log's truncation horizon: floors below seq can no
// longer be served gaplessly. A store that imports a snapshot calls
// this with the snapshot's floor — the collapsed range was never
// appended to this log, and without moving the horizon a subscriber
// attaching from inside it would be silently fast-forwarded over
// history it never saw (the gap ErrSeqTruncated exists to refuse).
func (l *Log) Truncate(seq uint64) {
	l.mu.Lock()
	if seq > l.truncSeq {
		l.truncSeq = seq
	}
	l.mu.Unlock()
}

// Replay returns the buffered recent events for a table with
// Seq > afterSeq, oldest first.
func (l *Log) Replay(table string, afterSeq uint64) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	r, ok := l.replays[table]
	if !ok {
		return nil
	}
	return r.after(afterSeq)
}

// SubscribeTail registers a subscriber that receives only events appended
// after this call.
func (l *Log) SubscribeTail(name string, policy Policy) *Subscription {
	l.mu.Lock()
	return l.subscribeLocked(name, l.pos, policy)
}

// Subscribe registers a subscriber that first receives every retained
// event with Seq > fromSeq (catch-up through the ring), then the live
// tail. When fromSeq predates the ring's retention the subscription would
// have a gap, so Subscribe refuses with ErrSeqTruncated — the caller must
// catch up through shipped WAL segments or a snapshot bootstrap first.
func (l *Log) Subscribe(name string, fromSeq uint64, policy Policy) (*Subscription, error) {
	l.mu.Lock()
	if fromSeq < l.truncSeq {
		oldest := l.truncSeq
		l.mu.Unlock()
		return nil, fmt.Errorf("%w: from %d, oldest gapless floor is %d", ErrSeqTruncated, fromSeq, oldest)
	}
	n := uint64(len(l.ring))
	start := uint64(0)
	if l.pos > n {
		start = l.pos - n
	}
	cursor := l.pos
	for p := start; p < l.pos; p++ {
		if l.ring[p%n].ev.Seq > fromSeq {
			cursor = p
			break
		}
	}
	return l.subscribeLocked(name, cursor, policy), nil
}

// subscribeLocked installs the subscription and starts its pump. The
// caller holds l.mu; subscribeLocked releases it.
func (l *Log) subscribeLocked(name string, cursor uint64, policy Policy) *Subscription {
	s := &Subscription{
		log:    l,
		name:   name,
		policy: policy,
		ch:     make(chan []Event, batchChanDepth),
		abort:  make(chan struct{}),
		done:   make(chan struct{}),
		cursor: cursor,
	}
	if l.closed {
		l.mu.Unlock()
		close(s.ch)
		close(s.done)
		return s
	}
	s.id = l.nextID
	l.nextID++
	l.subs[s.id] = s
	l.mu.Unlock()
	go s.run()
	return s
}

// Close shuts the log down: appends become no-ops and blocked appenders
// are released. Each subscription's pump drains the events it has not
// delivered yet, then closes its channel — a consumer that neither reads
// nor cancels keeps its pump parked until it does either.
func (l *Log) Close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	l.mu.Unlock()
	l.data.Broadcast()
	l.space.Broadcast()
}

// SubscriberStats describes one subscriber's progress.
type SubscriberStats struct {
	Name      string `json:"name"`
	Policy    string `json:"policy"`
	Delivered uint64 `json:"delivered"`
	Dropped   uint64 `json:"dropped"`
	// LagEvents is how many published events the subscriber has not yet
	// received; LagSeq is the Seq delta between the newest published
	// event and the subscriber's newest delivered one.
	LagEvents uint64 `json:"lagEvents"`
	LagSeq    uint64 `json:"lagSeq"`
}

// Stats is a point-in-time snapshot of pipeline activity.
type Stats struct {
	LastSeq uint64 `json:"lastSeq"`
	// TruncSeq is the newest Seq evicted from the fan-out ring; Subscribe
	// floors below it return ErrSeqTruncated (replicas fall back to WAL
	// segment shipping).
	TruncSeq    uint64            `json:"truncSeq"`
	Published   uint64            `json:"published"`
	Subscribers []SubscriberStats `json:"subscribers,omitempty"`
	// Latency is the publish→deliver latency histogram (per batch,
	// measured from append to hand-off into the subscriber channel).
	Latency LatencySummary `json:"publishToDeliver"`
}

// Stats reports the log's counters and per-subscriber progress.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	st := Stats{LastSeq: l.lastSeq, TruncSeq: l.truncSeq, Published: l.published}
	for _, s := range l.subs {
		sub := SubscriberStats{
			Name:      s.name,
			Policy:    s.policy.String(),
			Delivered: s.delivered,
			Dropped:   s.dropped,
			LagEvents: l.pos - s.cursor,
		}
		if s.lastSeq > 0 && l.lastSeq > s.lastSeq {
			sub.LagSeq = l.lastSeq - s.lastSeq
		} else if s.lastSeq == 0 && s.delivered == 0 {
			sub.LagSeq = sub.LagEvents
		}
		st.Subscribers = append(st.Subscribers, sub)
	}
	l.mu.Unlock()
	sort.Slice(st.Subscribers, func(i, j int) bool { return st.Subscribers[i].Name < st.Subscribers[j].Name })
	st.Latency = l.lat.summary()
	return st
}

// Subscription is one consumer's ordered view of the commit log. Events
// arrive as batches of contiguous, strictly Seq-ordered events — the
// delivery shape a log-shipping replica wants — and Flatten adapts the
// stream to a per-event channel for simpler consumers.
type Subscription struct {
	log    *Log
	id     int
	name   string
	policy Policy
	ch     chan []Event
	abort  chan struct{} // closed by Cancel to interrupt a blocked send
	done   chan struct{} // closed when the pump exits (cancel or log close)

	// Guarded by log.mu.
	cursor    uint64
	delivered uint64
	dropped   uint64
	lastSeq   uint64
	cancelled bool
}

// Events returns the ordered batch stream. The channel closes when the
// subscription is cancelled or the log closes.
func (s *Subscription) Events() <-chan []Event { return s.ch }

// Done is closed once the subscription has fully shut down.
func (s *Subscription) Done() <-chan struct{} { return s.done }

// Name returns the subscriber's name as reported in Stats.
func (s *Subscription) Name() string { return s.name }

// Cancel detaches the subscription; idempotent.
func (s *Subscription) Cancel() {
	s.log.mu.Lock()
	if s.cancelled {
		s.log.mu.Unlock()
		return
	}
	s.cancelled = true
	close(s.abort)
	s.log.mu.Unlock()
	s.log.data.Broadcast()
}

// run is the delivery pump: it copies contiguous event runs out of the
// ring and hands them to the subscriber channel. The cursor only advances
// after a batch is handed off, which is what lets Block-policy
// subscribers hold back the appender instead of losing events.
func (s *Subscription) run() {
	l := s.log
	for {
		l.mu.Lock()
		for s.cursor == l.pos && !l.closed && !s.cancelled {
			l.data.Wait()
		}
		if s.cancelled || (l.closed && s.cursor == l.pos) {
			s.exitLocked()
			return
		}
		n := uint64(len(l.ring))
		if l.pos-s.cursor > n {
			// Only DropOldest subscribers can be lapped: Block cursors
			// gate the appender via ringFullLocked.
			d := l.pos - n - s.cursor
			s.dropped += d
			s.cursor += d
		}
		count := l.pos - s.cursor
		if count > batchMax {
			count = batchMax
		}
		start := s.cursor
		at := l.ring[start%n].at
		var batch []Event
		if s.policy == Block {
			// A Block cursor gates the appender (ringFullLocked), so the
			// slots in [cursor, cursor+count) cannot be overwritten until
			// the cursor advances — copy them without holding the lock,
			// keeping a large memcpy out of the appender's critical path.
			l.mu.Unlock()
			batch = make([]Event, count)
			for i := uint64(0); i < count; i++ {
				batch[i] = l.ring[(start+i)%n].ev
			}
		} else {
			// DropOldest slots can be overwritten at any time; copy under
			// the lock.
			batch = make([]Event, count)
			for i := uint64(0); i < count; i++ {
				batch[i] = l.ring[(start+i)%n].ev
			}
			l.mu.Unlock()
		}

		select {
		case s.ch <- batch:
		case <-s.abort:
			l.mu.Lock()
			s.exitLocked()
			return
		}
		l.lat.observe(l.opts.Clock().Sub(at))

		l.mu.Lock()
		s.cursor += count
		s.delivered += count
		s.lastSeq = batch[count-1].Seq
		l.mu.Unlock()
		l.space.Broadcast()
	}
}

// exitLocked removes the subscription and closes its channels. The
// caller holds log.mu; exitLocked releases it.
func (s *Subscription) exitLocked() {
	delete(s.log.subs, s.id)
	s.log.mu.Unlock()
	s.log.space.Broadcast()
	close(s.ch)
	close(s.done)
}

// Flatten adapts the batch stream to a buffered per-event channel. The
// returned cancel function detaches the underlying subscription and lets
// in-flight events drop; without a cancel, every event is delivered and
// the channel closes once the subscription shuts down (log close drains
// the backlog first).
func (s *Subscription) Flatten(buf int) (<-chan Event, func()) {
	ch := make(chan Event, buf)
	go func() {
		defer close(ch)
		for batch := range s.ch {
			for i := range batch {
				select {
				case ch <- batch[i]:
				case <-s.abort:
					// Cancelled: the consumer is gone, stop forwarding.
					return
				}
			}
		}
	}()
	return ch, s.Cancel
}

// ring is a bounded FIFO of recent events, used per table for query
// activation replay.
type ring struct {
	events []Event
	head   int // index of oldest
	size   int
}

func newRing(capacity int) *ring {
	return &ring{events: make([]Event, capacity)}
}

func (r *ring) push(ev Event) {
	if len(r.events) == 0 {
		return
	}
	idx := (r.head + r.size) % len(r.events)
	if r.size == len(r.events) {
		// Overwrite oldest.
		r.events[r.head] = ev
		r.head = (r.head + 1) % len(r.events)
		return
	}
	r.events[idx] = ev
	r.size++
}

func (r *ring) after(seq uint64) []Event {
	out := make([]Event, 0, r.size)
	for i := 0; i < r.size; i++ {
		ev := r.events[(r.head+i)%len(r.events)]
		if ev.Seq > seq {
			out = append(out, ev)
		}
	}
	return out
}

// latBounds are the publish→deliver histogram bucket upper bounds in
// microseconds; the final bucket is open-ended.
var latBounds = [...]int64{50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000}

// latencyHist is a fixed-bucket latency histogram with atomic counters,
// cheap enough to observe on every delivered batch.
type latencyHist struct {
	counts [len(latBounds) + 1]atomic.Uint64
	sumUs  atomic.Int64
	n      atomic.Uint64
}

func (h *latencyHist) observe(d time.Duration) {
	us := d.Microseconds()
	i := sort.Search(len(latBounds), func(i int) bool { return us <= latBounds[i] })
	h.counts[i].Add(1)
	h.sumUs.Add(us)
	h.n.Add(1)
}

// LatencyBucket is one histogram bucket; LeMicros 0 marks the open-ended
// overflow bucket.
type LatencyBucket struct {
	LeMicros int64  `json:"leMicros"`
	Count    uint64 `json:"count"`
}

// LatencySummary reports the histogram plus its mean.
type LatencySummary struct {
	Batches    uint64          `json:"batches"`
	MeanMicros float64         `json:"meanMicros"`
	Buckets    []LatencyBucket `json:"buckets,omitempty"`
}

func (h *latencyHist) summary() LatencySummary {
	out := LatencySummary{Batches: h.n.Load()}
	if out.Batches > 0 {
		out.MeanMicros = float64(h.sumUs.Load()) / float64(out.Batches)
	}
	for i, le := range latBounds {
		if c := h.counts[i].Load(); c > 0 {
			out.Buckets = append(out.Buckets, LatencyBucket{LeMicros: le, Count: c})
		}
	}
	if c := h.counts[len(latBounds)].Load(); c > 0 {
		out.Buckets = append(out.Buckets, LatencyBucket{Count: c})
	}
	return out
}
