package commitlog

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"quaestor/internal/document"
)

func ev(seq uint64) Event {
	return Event{Seq: seq, Table: "t", Op: OpInsert, After: document.New(fmt.Sprintf("d%d", seq), nil)}
}

// drainAll collects every event from a flat subscription until its
// channel closes.
func drainAll(ch <-chan Event, out *[]Event, mu *sync.Mutex, done chan struct{}) {
	defer close(done)
	for e := range ch {
		mu.Lock()
		*out = append(*out, e)
		mu.Unlock()
	}
}

func TestFanOutDeliversInOrderToAllSubscribers(t *testing.T) {
	l := NewLog(&Options{Ring: 64})
	const subs, events = 4, 500
	var mu sync.Mutex
	got := make([][]Event, subs)
	dones := make([]chan struct{}, subs)
	cancels := make([]func(), subs)
	for i := 0; i < subs; i++ {
		ch, cancel := l.SubscribeTail(fmt.Sprintf("s%d", i), Block).Flatten(16)
		dones[i] = make(chan struct{})
		cancels[i] = cancel
		go drainAll(ch, &got[i], &mu, dones[i])
	}
	for s := uint64(1); s <= events; s++ {
		l.Append([]Event{ev(s)})
	}
	l.Close()
	for i := range dones {
		<-dones[i]
	}
	for i := 0; i < subs; i++ {
		mu.Lock()
		evs := got[i]
		mu.Unlock()
		if len(evs) != events {
			t.Fatalf("subscriber %d got %d events, want %d", i, len(evs), events)
		}
		for j, e := range evs {
			if e.Seq != uint64(j+1) {
				t.Fatalf("subscriber %d event %d has seq %d", i, j, e.Seq)
			}
		}
	}
	_ = cancels
}

func TestSequencerReordersOutOfOrderArrivals(t *testing.T) {
	l := NewLog(&Options{Ring: 64})
	q := NewSequencer(l, 0)
	var mu sync.Mutex
	var got []Event
	done := make(chan struct{})
	ch, _ := l.SubscribeTail("s", Block).Flatten(16)
	go drainAll(ch, &got, &mu, done)

	// Arrivals scrambled: 3, 1 (flushes 1), 2 (flushes 2,3), 5, 4 (flushes 4,5).
	for _, s := range []uint64{3, 1, 2, 5, 4} {
		q.Publish(ev(s))
	}
	l.Close()
	<-done
	if len(got) != 5 {
		t.Fatalf("got %d events, want 5: %v", len(got), got)
	}
	for i, e := range got {
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d, want %d", i, e.Seq, i+1)
		}
	}
	if st := q.Stats(); st.Held != 0 || st.NextSeq != 6 || st.MaxHeld == 0 {
		t.Errorf("sequencer stats = %+v", st)
	}
}

func TestSequencerSkipReleasesGap(t *testing.T) {
	l := NewLog(&Options{Ring: 64})
	q := NewSequencer(l, 0)
	var mu sync.Mutex
	var got []Event
	done := make(chan struct{})
	ch, _ := l.SubscribeTail("s", Block).Flatten(16)
	go drainAll(ch, &got, &mu, done)

	q.Publish(ev(2)) // held: waiting for 1
	q.Publish(ev(3)) // held
	q.Skip(1)        // 1 failed its WAL append: 2 and 3 flush
	q.Skip(1)        // duplicate skip below the watermark is a no-op
	l.Close()
	<-done
	if len(got) != 2 || got[0].Seq != 2 || got[1].Seq != 3 {
		t.Fatalf("got %v, want seqs 2,3", got)
	}
}

func TestSubscribeFromSeqCatchesUpThroughRing(t *testing.T) {
	l := NewLog(&Options{Ring: 64})
	for s := uint64(1); s <= 10; s++ {
		l.Append([]Event{ev(s)})
	}
	sub, err := l.Subscribe("replica", 4, Block)
	if err != nil {
		t.Fatal(err)
	}
	batch := <-sub.Events()
	if len(batch) != 6 {
		t.Fatalf("catch-up batch has %d events, want 6 (seqs 5..10): %v", len(batch), batch)
	}
	for i, e := range batch {
		if e.Seq != uint64(5+i) {
			t.Fatalf("catch-up event %d has seq %d", i, e.Seq)
		}
	}
	// The live tail follows the catch-up.
	l.Append([]Event{ev(11)})
	batch = <-sub.Events()
	if len(batch) != 1 || batch[0].Seq != 11 {
		t.Fatalf("live batch = %v", batch)
	}
	sub.Cancel()
	if _, ok := <-sub.Events(); ok {
		// A pending batch may still arrive; the channel must close after.
		if _, ok := <-sub.Events(); ok {
			t.Error("cancelled subscription channel still open")
		}
	}
}

// TestSubscribeTruncatedFloorReturnsTypedError is the regression test for
// the silent-gap bug: Subscribe with a floor older than the ring used to
// start at the ring head, silently skipping the evicted events. A replica
// must instead receive ErrSeqTruncated so it knows to fall back to WAL
// segment shipping (or a snapshot bootstrap).
func TestSubscribeTruncatedFloorReturnsTypedError(t *testing.T) {
	l := NewLog(&Options{Ring: 8})
	for s := uint64(1); s <= 20; s++ {
		l.Append([]Event{ev(s)})
	}
	// Ring of 8 retains seqs 13..20; the newest evicted seq is 12.
	if st := l.Stats(); st.TruncSeq != 12 {
		t.Fatalf("TruncSeq = %d, want 12", st.TruncSeq)
	}
	for _, from := range []uint64{0, 5, 11} {
		if _, err := l.Subscribe("replica", from, Block); !errors.Is(err, ErrSeqTruncated) {
			t.Fatalf("Subscribe(from=%d) err = %v, want ErrSeqTruncated", from, err)
		}
	}
	// The oldest gapless floor itself (and anything newer) still works.
	sub, err := l.Subscribe("replica", 12, Block)
	if err != nil {
		t.Fatalf("Subscribe(from=12): %v", err)
	}
	batch := <-sub.Events()
	if len(batch) == 0 || batch[0].Seq != 13 {
		t.Fatalf("catch-up from 12 starts at %v, want seq 13", batch)
	}
	sub.Cancel()

	// A log that tailed from a recovered store (StartSeq > 0) refuses
	// floors below its start even before anything is evicted: those events
	// predate the log and were never retained.
	l2 := NewLog(&Options{Ring: 64, StartSeq: 100})
	if _, err := l2.Subscribe("replica", 50, Block); !errors.Is(err, ErrSeqTruncated) {
		t.Fatalf("StartSeq floor err = %v, want ErrSeqTruncated", err)
	}
	if _, err := l2.Subscribe("replica", 100, Block); err != nil {
		t.Fatalf("Subscribe at StartSeq: %v", err)
	}
}

// TestSequencerAdvanceTo covers the snapshot-bootstrap jump: the watermark
// moves forward without waiting for (or skipping) the covered range, and
// pending events beyond the new watermark flush once contiguous.
func TestSequencerAdvanceTo(t *testing.T) {
	l := NewLog(&Options{Ring: 64})
	q := NewSequencer(l, 0)
	var mu sync.Mutex
	var got []Event
	done := make(chan struct{})
	ch, _ := l.SubscribeTail("s", Block).Flatten(16)
	go drainAll(ch, &got, &mu, done)

	q.Publish(ev(1001)) // held: sequencer expects 1
	q.AdvanceTo(1001)   // snapshot covered 1..1000
	q.Publish(ev(1002))
	q.AdvanceTo(500) // backwards advance is a no-op
	q.Publish(ev(1003))
	l.Close()
	<-done
	if len(got) != 3 || got[0].Seq != 1001 || got[2].Seq != 1003 {
		t.Fatalf("got %v, want seqs 1001..1003", got)
	}
	if st := q.Stats(); st.NextSeq != 1004 || st.Held != 0 {
		t.Fatalf("stats = %+v, want next 1004, held 0", st)
	}
}

func TestDropOldestCountsGapAndKeepsOrder(t *testing.T) {
	l := NewLog(&Options{Ring: 8})
	sub := l.SubscribeTail("slow", DropOldest)
	// Do not read: the ring laps the subscriber.
	for s := uint64(1); s <= 100; s++ {
		l.Append([]Event{ev(s)})
	}
	var got []Event
	deadline := time.After(5 * time.Second)
	for len(got) == 0 || got[len(got)-1].Seq < 100 {
		select {
		case batch := <-sub.Events():
			got = append(got, batch...)
		case <-deadline:
			t.Fatalf("timed out; got %d events", len(got))
		}
	}
	last := uint64(0)
	for _, e := range got {
		if e.Seq <= last {
			t.Fatalf("drop subscriber saw non-increasing seq %d after %d", e.Seq, last)
		}
		last = e.Seq
	}
	st := l.Stats()
	if len(st.Subscribers) != 1 {
		t.Fatalf("stats subscribers = %+v", st.Subscribers)
	}
	ss := st.Subscribers[0]
	if ss.Dropped == 0 {
		t.Errorf("expected drops, got %+v", ss)
	}
	if ss.Dropped+ss.Delivered != 100 {
		t.Errorf("dropped %d + delivered %d != 100", ss.Dropped, ss.Delivered)
	}
}

func TestBlockPolicyNeverDrops(t *testing.T) {
	l := NewLog(&Options{Ring: 4})
	var mu sync.Mutex
	var got []Event
	done := make(chan struct{})
	ch, _ := l.SubscribeTail("s", Block).Flatten(2)
	go func() {
		defer close(done)
		for e := range ch {
			time.Sleep(100 * time.Microsecond) // slow consumer
			mu.Lock()
			got = append(got, e)
			mu.Unlock()
		}
	}()
	const events = 200
	for s := uint64(1); s <= events; s++ {
		l.Append([]Event{ev(s)}) // must block rather than lap the subscriber
	}
	// Wait for the pump to drain before closing, so nothing is dropped at
	// shutdown.
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == events {
			break
		}
		time.Sleep(time.Millisecond)
	}
	l.Close()
	<-done
	if len(got) != events {
		t.Fatalf("blocking subscriber got %d events, want %d", len(got), events)
	}
	for i, e := range got {
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
	}
}

func TestReplayRing(t *testing.T) {
	l := NewLog(&Options{Ring: 64, ReplayPerTable: 4})
	for s := uint64(1); s <= 10; s++ {
		l.Append([]Event{ev(s)})
	}
	replay := l.Replay("t", 0)
	if len(replay) != 4 || replay[0].Seq != 7 || replay[3].Seq != 10 {
		t.Fatalf("replay = %v", replay)
	}
	if got := l.Replay("t", 8); len(got) != 2 {
		t.Fatalf("replay after 8 = %v", got)
	}
	if got := l.Replay("nope", 0); got != nil {
		t.Error("unknown table replay should be nil")
	}
}

func TestStatsLagAndLatency(t *testing.T) {
	l := NewLog(&Options{Ring: 64})
	sub := l.SubscribeTail("s", Block)
	for s := uint64(1); s <= 3; s++ {
		l.Append([]Event{ev(s)})
	}
	batch := <-sub.Events()
	if len(batch) == 0 {
		t.Fatal("no batch")
	}
	// Poll until the pump records the delivery.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := l.Stats()
		if len(st.Subscribers) == 1 && st.Subscribers[0].Delivered > 0 {
			if st.LastSeq != 3 || st.Published != 3 {
				t.Fatalf("stats = %+v", st)
			}
			if st.Latency.Batches == 0 {
				t.Error("no latency samples")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("pump never recorded delivery")
		}
		time.Sleep(time.Millisecond)
	}
	sub.Cancel()
}

func TestCloseOnSubscribedLogClosesChannels(t *testing.T) {
	l := NewLog(nil)
	sub := l.SubscribeTail("s", Block)
	l.Close()
	if _, ok := <-sub.Events(); ok {
		t.Error("subscription channel open after log close")
	}
	<-sub.Done()
	// Subscribing to a closed log yields a closed subscription.
	sub2 := l.SubscribeTail("late", Block)
	if _, ok := <-sub2.Events(); ok {
		t.Error("subscription on closed log should be closed")
	}
	// Appending to a closed log is a no-op.
	l.Append([]Event{ev(1)})
	if l.LastSeq() != 0 {
		t.Error("append after close changed state")
	}
}

func TestConcurrentPublishersObserveTotalOrder(t *testing.T) {
	l := NewLog(&Options{Ring: 1 << 12})
	q := NewSequencer(l, 0)
	var mu sync.Mutex
	var got []Event
	done := make(chan struct{})
	ch, _ := l.SubscribeTail("s", Block).Flatten(1 << 12)
	go drainAll(ch, &got, &mu, done)

	const writers, each = 16, 200
	var seq struct {
		sync.Mutex
		n uint64
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				// Take a seq then publish outside the allocation lock,
				// exactly like writers racing past their shard unlock.
				seq.Lock()
				seq.n++
				s := seq.n
				seq.Unlock()
				q.Publish(ev(s))
			}
		}()
	}
	wg.Wait()
	l.Close()
	<-done
	if len(got) != writers*each {
		t.Fatalf("got %d events, want %d", len(got), writers*each)
	}
	for i, e := range got {
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d — total order violated", i, e.Seq)
		}
	}
}
