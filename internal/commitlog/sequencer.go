package commitlog

import (
	"sync"
	"sync/atomic"
)

// Sequencer restores strict global Seq order in front of a Log. Writers
// release their shard locks before their commit acknowledgement runs, so
// two racing writes can reach the pipeline with their Seqs swapped; the
// sequencer holds the later one back until the gap fills. Every assigned
// Seq must eventually be resolved exactly once — Publish for a committed
// write, Skip for one whose log append failed — or the stream stalls at
// the gap (deliberately: delivering around a hole would break the
// total-order contract).
type Sequencer struct {
	mu      sync.Mutex
	log     *Log
	next    uint64            // lowest unresolved Seq
	pending map[uint64]*Event // out-of-order arrivals; nil marks a skip
	one     [1]Event          // scratch for the in-order fast path
	buf     []Event           // scratch batch; Append copies before returning

	// Stats mirrors, readable without mu: Publish can hold mu across a
	// blocking Log.Append (a stalled Block subscriber), and the stats
	// endpoint must stay readable exactly then to identify the stall.
	statNext    atomic.Uint64
	statHeld    atomic.Int64
	statMaxHeld atomic.Int64
}

// NewSequencer creates a sequencer feeding log, expecting the next event
// to carry lastSeq+1.
func NewSequencer(log *Log, lastSeq uint64) *Sequencer {
	q := &Sequencer{log: log, next: lastSeq + 1, pending: map[uint64]*Event{}}
	q.statNext.Store(q.next)
	return q
}

// Publish resolves ev's Seq as committed. Arrivals below the watermark
// (duplicates from overlapping failure paths) are ignored.
func (q *Sequencer) Publish(ev Event) {
	q.mu.Lock()
	if ev.Seq < q.next {
		q.mu.Unlock()
		return
	}
	if ev.Seq == q.next && len(q.pending) == 0 {
		// In-order arrival with nothing held: skip the map entirely.
		q.next++
		q.statNext.Store(q.next)
		q.one[0] = ev
		q.log.Append(q.one[:])
		q.mu.Unlock()
		return
	}
	e := ev
	q.pending[ev.Seq] = &e
	q.flushAndUnlock()
}

// PublishAll resolves a group of committed events with one lock
// acquisition — the WAL committer's entry point, called once per commit
// group instead of once per record. Events may arrive in any order
// (payloads sit in enqueue order, which races across shards); in-order
// runs are accumulated and appended to the log in single calls, so the
// common case pays one mutex round-trip and one fan-out append per
// group rather than per event.
func (q *Sequencer) PublishAll(evs []Event) {
	if len(evs) == 0 {
		return
	}
	q.mu.Lock()
	run := q.buf[:0]
	for i := range evs {
		ev := evs[i]
		if ev.Seq < q.next {
			continue // duplicate below the watermark
		}
		if ev.Seq == q.next && len(q.pending) == 0 {
			run = append(run, ev)
			q.next++
			continue
		}
		// Out of order: keep the appended stream ordered by flushing the
		// run accumulated so far before buffering this event.
		if len(run) > 0 {
			q.log.Append(run)
			run = run[:0]
		}
		e := ev
		q.pending[ev.Seq] = &e
		for {
			p, ok := q.pending[q.next]
			if !ok {
				break
			}
			delete(q.pending, q.next)
			q.next++
			if p != nil {
				run = append(run, *p)
			}
		}
	}
	if held := int64(len(q.pending)); held > q.statMaxHeld.Load() {
		q.statMaxHeld.Store(held)
	}
	q.statNext.Store(q.next)
	q.statHeld.Store(int64(len(q.pending)))
	if len(run) > 0 {
		q.log.Append(run)
	}
	q.buf = run[:0]
	q.mu.Unlock()
}

// PublishBatch resolves an ascending-Seq batch of events as committed
// with one lock acquisition and one Log.Append — the replica apply
// path's entry point, where a single applier owns the whole sequence
// domain. Sequence numbers absent from the batch but below its last
// event are implicitly resolved as skipped (the primary never published
// them); that is only sound when no other publisher can still deliver
// them, which is exactly the single-applier contract. With events
// pending from another publisher it falls back to per-event Publish.
func (q *Sequencer) PublishBatch(evs []Event) {
	for len(evs) > 0 && evs[0].Seq < q.statNext.Load() {
		evs = evs[1:] // duplicate re-delivery
	}
	if len(evs) == 0 {
		return
	}
	q.mu.Lock()
	if len(q.pending) == 0 && evs[0].Seq >= q.next {
		q.next = evs[len(evs)-1].Seq + 1
		q.statNext.Store(q.next)
		q.log.Append(evs)
		q.mu.Unlock()
		return
	}
	q.mu.Unlock()
	for i := range evs {
		q.Publish(evs[i])
	}
}

// AdvanceTo moves the sequencer's expectation forward so the next event
// carries Seq next. It is the snapshot-bootstrap entry point for a
// replica: after importing a snapshot with floor F, the replicated stream
// resumes at F+1, and the millions of sequence numbers the snapshot
// already covers must not be waited for (or skipped one by one). Pending
// events below the new watermark are discarded — callers advance only
// over history they have applied through another channel, with no
// in-flight publishes below the target (the import path is quiescent).
func (q *Sequencer) AdvanceTo(next uint64) {
	q.mu.Lock()
	if next <= q.next {
		q.mu.Unlock()
		return
	}
	for seq := range q.pending {
		if seq < next {
			delete(q.pending, seq)
		}
	}
	q.next = next
	// Pending events at/above the watermark may now be contiguous.
	q.flushAndUnlock()
}

// PublishSynthetic appends a batch of synthetic events — state
// transitions a snapshot import derived by diffing old vs imported
// state, not commits of their own — directly to the fan-out log,
// bypassing the reorder buffer. It is the companion of AdvanceTo: after
// the sequencer jumped to a snapshot floor F+1, the import publishes
// the diff as events sequenced at the floor F (they describe writes the
// collapsed range subsumed, so they cannot consume sequence numbers the
// primary owns). Every event is stamped Synthetic; subscribers must
// tolerate the resulting run of equal Seqs. Events must carry Seq below
// the sequencer's next expectation — with in-flight publishes quiesced
// (the import path's single-applier contract), the append cannot
// interleave mid-flush with ordered traffic.
func (q *Sequencer) PublishSynthetic(evs []Event) {
	if len(evs) == 0 {
		return
	}
	for i := range evs {
		evs[i].Synthetic = true
	}
	// Held across Append for the same reason flushAndUnlock holds it:
	// batches from distinct publishers must not interleave.
	q.mu.Lock()
	q.log.Append(evs)
	q.mu.Unlock()
}

// Skip resolves seq as never-committed (its WAL append failed), releasing
// the events queued behind it.
func (q *Sequencer) Skip(seq uint64) {
	q.mu.Lock()
	if seq < q.next {
		q.mu.Unlock()
		return
	}
	q.pending[seq] = nil
	q.flushAndUnlock()
}

// flushAndUnlock appends the contiguous resolved prefix to the log and
// releases the lock. Append runs under q.mu so concurrent flushes cannot
// interleave their batches out of order.
func (q *Sequencer) flushAndUnlock() {
	if held := int64(len(q.pending)); held > q.statMaxHeld.Load() {
		q.statMaxHeld.Store(held)
	}
	batch := q.buf[:0]
	for {
		e, ok := q.pending[q.next]
		if !ok {
			break
		}
		delete(q.pending, q.next)
		q.next++
		if e != nil {
			batch = append(batch, *e)
		}
	}
	q.statNext.Store(q.next)
	q.statHeld.Store(int64(len(q.pending)))
	if len(batch) > 0 {
		q.log.Append(batch)
	}
	q.buf = batch[:0]
	q.mu.Unlock()
}

// SequencerStats reports the reorder buffer's occupancy.
type SequencerStats struct {
	// NextSeq is the lowest Seq the sequencer is still waiting for.
	NextSeq uint64 `json:"nextSeq"`
	// Held is how many out-of-order events are currently buffered;
	// MaxHeld is the high-water mark.
	Held    int `json:"held"`
	MaxHeld int `json:"maxHeld"`
}

// Stats returns the reorder buffer's occupancy counters. It reads the
// atomic mirrors, never mu: a Publish blocked inside Log.Append (stalled
// subscriber backpressure) must not make stats unreadable.
func (q *Sequencer) Stats() SequencerStats {
	return SequencerStats{
		NextSeq: q.statNext.Load(),
		Held:    int(q.statHeld.Load()),
		MaxHeld: int(q.statMaxHeld.Load()),
	}
}
