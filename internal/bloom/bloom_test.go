package bloom

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	prop := func(keys []string) bool {
		f := NewForCapacity(len(keys)+1, 0.01)
		for _, k := range keys {
			f.Add(k)
		}
		for _, k := range keys {
			if !f.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFalsePositiveRateNearTarget(t *testing.T) {
	const n = 5000
	f := NewForCapacity(n, 0.01)
	for i := 0; i < n; i++ {
		f.Add(fmt.Sprintf("member-%d", i))
	}
	fp := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		if f.Contains(fmt.Sprintf("absent-%d", i)) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.03 {
		t.Errorf("false positive rate %.4f far above 1%% target", rate)
	}
}

func TestPaperOperatingPoint(t *testing.T) {
	// Paper: a 14.6KB filter holding 20,000 stale entries has a ~6% FPR.
	f := New(10*1460*8, 4)
	for i := 0; i < 20000; i++ {
		f.Add(fmt.Sprintf("q:posts/tag%05d", i))
	}
	fp := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		if f.Contains(fmt.Sprintf("nonmember-%d", i)) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate < 0.02 || rate > 0.12 {
		t.Errorf("FPR at paper operating point = %.4f, expected ~0.06", rate)
	}
	if predicted := f.EstimatedFalsePositiveRate(); predicted < 0.02 || predicted > 0.12 {
		t.Errorf("analytic FPR = %.4f", predicted)
	}
}

func TestOptimalParameters(t *testing.T) {
	m := OptimalM(1000, 0.01)
	// Theory: m = -n ln p / ln²2 ≈ 9585 bits for n=1000, p=0.01.
	if m < 9000 || m > 10200 {
		t.Errorf("OptimalM = %d", m)
	}
	k := OptimalK(m, 1000)
	if k < 6 || k > 8 {
		t.Errorf("OptimalK = %d", k) // ≈ 6.64
	}
	if OptimalM(0, 0.01) == 0 || OptimalK(64, 0) == 0 {
		t.Error("degenerate inputs must stay positive")
	}
	if OptimalM(10, -1) == 0 {
		t.Error("invalid p must fall back")
	}
}

func TestUnion(t *testing.T) {
	a := New(1024, 4)
	b := New(1024, 4)
	a.Add("only-a")
	b.Add("only-b")
	if err := a.Union(b); err != nil {
		t.Fatal(err)
	}
	if !a.Contains("only-a") || !a.Contains("only-b") {
		t.Error("union lost members")
	}
	c := New(2048, 4)
	if err := a.Union(c); err == nil {
		t.Error("union of mismatched sizes must fail")
	}
	if err := a.Union(nil); err != nil {
		t.Error("union with nil should be a no-op")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	prop := func(keys []string) bool {
		f := New(4096, 5)
		for _, k := range keys {
			f.Add(k)
		}
		back, err := Unmarshal(f.Marshal())
		if err != nil {
			return false
		}
		if back.M() != f.M() || back.K() != f.K() || back.N() != f.N() {
			return false
		}
		for _, k := range keys {
			if !back.Contains(k) {
				return false
			}
		}
		return back.PopCount() == f.PopCount()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalCorrupt(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		[]byte("XXXX0123456789ab"),
		New(64, 2).Marshal()[:17],
	}
	for i, data := range cases {
		if _, err := Unmarshal(data); err == nil {
			t.Errorf("case %d: corrupt data accepted", i)
		}
	}
	// Tampered k beyond limit.
	good := New(64, 2).Marshal()
	good[8] = 200
	if _, err := Unmarshal(good); err == nil {
		t.Error("k=200 accepted")
	}
}

func TestCountingAddRemove(t *testing.T) {
	c := NewCounting(1024, 4)
	raised := c.Add("key1")
	if len(raised) == 0 {
		t.Fatal("first add should raise bits")
	}
	if !c.Contains("key1") {
		t.Error("added key missing")
	}
	// Second add of the same key raises nothing new.
	if again := c.Add("key1"); len(again) != 0 {
		t.Errorf("re-add raised %v", again)
	}
	// One remove leaves the key present (count 2 -> 1).
	if cleared := c.Remove("key1"); len(cleared) != 0 {
		t.Errorf("first remove cleared %v", cleared)
	}
	if !c.Contains("key1") {
		t.Error("key should survive one of two removes")
	}
	cleared := c.Remove("key1")
	if len(cleared) == 0 {
		t.Error("final remove should clear bits")
	}
	if c.Contains("key1") {
		t.Error("fully removed key still present")
	}
	if c.N() != 0 {
		t.Errorf("N = %d", c.N())
	}
}

func TestCountingFlattenMatchesContains(t *testing.T) {
	prop := func(keys []string, removeIdx []uint8) bool {
		c := NewCounting(2048, 4)
		for _, k := range keys {
			c.Add(k)
		}
		removed := map[string]bool{}
		for _, idx := range removeIdx {
			if len(keys) == 0 {
				break
			}
			k := keys[int(idx)%len(keys)]
			if !removed[k] {
				c.Remove(k)
				removed[k] = true
			}
		}
		flat := c.Flatten()
		for _, k := range keys {
			if !removed[k] && !flat.Contains(k) {
				return false // flat filter lost a live member
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFlattenMirrorsIncrementalBits(t *testing.T) {
	// The EBF maintains a flat mirror from Add/Remove transition bits; the
	// mirror must equal a from-scratch Flatten at all times.
	c := NewCounting(512, 3)
	mirror := New(512, 3)
	r := rand.New(rand.NewSource(5))
	live := map[string]bool{}
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("k%d", r.Intn(60))
		if live[k] {
			for _, bit := range c.Remove(k) {
				mirror.ClearBit(bit)
			}
			live[k] = false
		} else {
			for _, bit := range c.Add(k) {
				mirror.SetBit(bit)
			}
			live[k] = true
		}
		if i%37 == 0 {
			flat := c.Flatten()
			if flat.PopCount() != mirror.PopCount() {
				t.Fatalf("step %d: mirror diverged (%d vs %d bits)", i, mirror.PopCount(), flat.PopCount())
			}
		}
	}
}

func TestClear(t *testing.T) {
	f := New(256, 3)
	f.Add("x")
	f.Clear()
	if f.Contains("x") || f.N() != 0 || f.PopCount() != 0 {
		t.Error("Clear incomplete")
	}
	c := NewCounting(256, 3)
	c.Add("x")
	c.Clear()
	if c.Contains("x") || c.N() != 0 {
		t.Error("counting Clear incomplete")
	}
}

func TestCloneIndependence(t *testing.T) {
	f := New(256, 3)
	f.Add("x")
	cp := f.Clone()
	cp.Add("y")
	if f.Contains("y") && !f.Contains("x") {
		t.Error("clone shares bit storage")
	}
	if !cp.Contains("x") || !cp.Contains("y") {
		t.Error("clone lost state")
	}
}

func TestIndexesStableAndBounded(t *testing.T) {
	idx1 := Indexes("some-key", 1000, 7)
	idx2 := Indexes("some-key", 1000, 7)
	if !reflect.DeepEqual(idx1, idx2) {
		t.Error("Indexes must be deterministic")
	}
	if len(idx1) != 7 {
		t.Errorf("want 7 indexes, got %d", len(idx1))
	}
	for _, i := range idx1 {
		if i >= 1000 {
			t.Errorf("index %d out of range", i)
		}
	}
}

func TestFalsePositiveRateFormula(t *testing.T) {
	if FalsePositiveRate(0, 4, 10) != 1 {
		t.Error("zero-size filter should report FPR 1")
	}
	got := FalsePositiveRate(9585, 7, 1000)
	if got < 0.005 || got > 0.02 {
		t.Errorf("formula FPR = %f, want ~0.01", got)
	}
}
