// Package bloom implements the Bloom filter machinery underlying the
// Expiring Bloom Filter (Section 3.1).
//
// It provides a flat (immutable-style) Bloom filter for the client copy and
// a Counting Bloom filter for the server, which supports removals when a
// stale query's maximum TTL expires. Both use the standard double-hashing
// scheme g_i(x) = h1(x) + i*h2(x) mod m over 64-bit FNV-1a, giving k
// effectively independent hash functions from two (Kirsch–Mitzenmacher).
package bloom

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
)

// ErrCorrupt is returned when deserializing malformed filter bytes.
var ErrCorrupt = errors.New("bloom: corrupt serialized filter")

// OptimalM returns the bit-array size minimizing false positives for n
// expected entries at target false-positive rate p: m = -n·ln(p)/ln(2)².
func OptimalM(n int, p float64) uint32 {
	if n <= 0 {
		n = 1
	}
	if p <= 0 || p >= 1 {
		p = 0.01
	}
	m := math.Ceil(-float64(n) * math.Log(p) / (math.Ln2 * math.Ln2))
	if m < 8 {
		m = 8
	}
	return uint32(m)
}

// OptimalK returns the hash-function count minimizing false positives:
// k = m/n·ln(2).
func OptimalK(m uint32, n int) uint32 {
	if n <= 0 {
		n = 1
	}
	k := math.Round(float64(m) / float64(n) * math.Ln2)
	if k < 1 {
		k = 1
	}
	if k > 32 {
		k = 32
	}
	return uint32(k)
}

// FalsePositiveRate estimates the false positive probability of a filter
// with m bits and k hashes after n insertions: (1 − e^{−kn/m})^k.
func FalsePositiveRate(m, k uint32, n int) float64 {
	if m == 0 {
		return 1
	}
	return math.Pow(1-math.Exp(-float64(k)*float64(n)/float64(m)), float64(k))
}

// hashPair derives the two base hashes for double hashing.
func hashPair(key string) (uint64, uint64) {
	h1 := fnv.New64a()
	h1.Write([]byte(key))
	a := h1.Sum64()
	h2 := fnv.New64()
	h2.Write([]byte(key))
	b := h2.Sum64()
	if b%2 == 0 {
		// An odd step guarantees full-period probing for power-of-two m and
		// avoids degenerate stride 0 for any m.
		b++
	}
	return a, b
}

// Indexes returns the k (not necessarily distinct) bit positions for key in
// a filter of m bits. Exposed for external filter representations such as
// the kvstore-backed distributed EBF.
func Indexes(key string, m, k uint32) []uint32 {
	return indexes(key, m, k, make([]uint32, 0, k))
}

// indexes fills idx with the k bit positions for key in a filter of m bits.
func indexes(key string, m, k uint32, idx []uint32) []uint32 {
	a, b := hashPair(key)
	idx = idx[:0]
	for i := uint32(0); i < k; i++ {
		idx = append(idx, uint32((a+uint64(i)*b)%uint64(m)))
	}
	return idx
}

// Filter is a flat Bloom filter — the client-side copy of the EBF
// ("Clients receive a flat, immutable copy of the EBF, i.e. a normal Bloom
// filter"). It is not safe for concurrent mutation; concurrent Contains
// calls on a filter that is no longer mutated are safe.
type Filter struct {
	m    uint32
	k    uint32
	bits []uint64
	n    int // inserted element count (approximate after Union)
}

// New creates a flat filter with m bits and k hash functions.
func New(m, k uint32) *Filter {
	if m == 0 {
		m = 8
	}
	if k == 0 {
		k = 1
	}
	return &Filter{m: m, k: k, bits: make([]uint64, (m+63)/64)}
}

// NewForCapacity sizes a filter for n entries at false-positive rate p.
func NewForCapacity(n int, p float64) *Filter {
	m := OptimalM(n, p)
	return New(m, OptimalK(m, n))
}

// M returns the bit-array size.
func (f *Filter) M() uint32 { return f.m }

// K returns the hash-function count.
func (f *Filter) K() uint32 { return f.k }

// N returns the approximate number of inserted elements.
func (f *Filter) N() int { return f.n }

// Add inserts a key.
func (f *Filter) Add(key string) {
	var buf [32]uint32
	for _, i := range indexes(key, f.m, f.k, buf[:0]) {
		f.bits[i/64] |= 1 << (i % 64)
	}
	f.n++
}

// Contains reports whether the key may be present (false positives possible,
// false negatives impossible).
func (f *Filter) Contains(key string) bool {
	var buf [32]uint32
	for _, i := range indexes(key, f.m, f.k, buf[:0]) {
		if f.bits[i/64]&(1<<(i%64)) == 0 {
			return false
		}
	}
	return true
}

// SetBit sets one raw bit position. Used when flattening a counting filter.
func (f *Filter) SetBit(i uint32) {
	if i < f.m {
		f.bits[i/64] |= 1 << (i % 64)
	}
}

// ClearBit clears one raw bit position. Used to mirror counting-filter
// removals into the flat copy.
func (f *Filter) ClearBit(i uint32) {
	if i < f.m {
		f.bits[i/64] &^= 1 << (i % 64)
	}
}

// Bit reports one raw bit position.
func (f *Filter) Bit(i uint32) bool {
	return i < f.m && f.bits[i/64]&(1<<(i%64)) != 0
}

// PopCount returns the number of set bits.
func (f *Filter) PopCount() int {
	n := 0
	for _, w := range f.bits {
		n += popcount(w)
	}
	return n
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// Union merges other into f with a bitwise OR. Both filters must share m
// and k — this is the per-table EBF partition aggregation from Section 3.3
// ("the aggregated EBF is constructed by a union over the EBF partitions
// through a bitwise OR-operation").
func (f *Filter) Union(other *Filter) error {
	if other == nil {
		return nil
	}
	if f.m != other.m || f.k != other.k {
		return fmt.Errorf("bloom: union of incompatible filters (m=%d,k=%d vs m=%d,k=%d)", f.m, f.k, other.m, other.k)
	}
	for i := range f.bits {
		f.bits[i] |= other.bits[i]
	}
	f.n += other.n
	return nil
}

// Clone returns a deep copy.
func (f *Filter) Clone() *Filter {
	cp := &Filter{m: f.m, k: f.k, n: f.n, bits: make([]uint64, len(f.bits))}
	copy(cp.bits, f.bits)
	return cp
}

// Clear zeroes the filter.
func (f *Filter) Clear() {
	for i := range f.bits {
		f.bits[i] = 0
	}
	f.n = 0
}

// EstimatedFalsePositiveRate reports the expected FPR given the current
// element count.
func (f *Filter) EstimatedFalsePositiveRate() float64 {
	return FalsePositiveRate(f.m, f.k, f.n)
}

// Marshal serializes the filter for the HTTP wire: a 16-byte header
// (magic, m, k, n) followed by the little-endian bit words. A sparse filter
// compresses well under HTTP gzip, as the paper notes.
func (f *Filter) Marshal() []byte {
	out := make([]byte, 16+len(f.bits)*8)
	copy(out[0:4], "QBF1")
	binary.LittleEndian.PutUint32(out[4:8], f.m)
	binary.LittleEndian.PutUint32(out[8:12], f.k)
	binary.LittleEndian.PutUint32(out[12:16], uint32(f.n))
	for i, w := range f.bits {
		binary.LittleEndian.PutUint64(out[16+i*8:], w)
	}
	return out
}

// Unmarshal parses bytes produced by Marshal.
func Unmarshal(data []byte) (*Filter, error) {
	if len(data) < 16 || string(data[0:4]) != "QBF1" {
		return nil, ErrCorrupt
	}
	m := binary.LittleEndian.Uint32(data[4:8])
	k := binary.LittleEndian.Uint32(data[8:12])
	n := binary.LittleEndian.Uint32(data[12:16])
	words := int((m + 63) / 64)
	if len(data) != 16+words*8 || k == 0 || k > 32 {
		return nil, ErrCorrupt
	}
	f := New(m, k)
	f.n = int(n)
	for i := 0; i < words; i++ {
		f.bits[i] = binary.LittleEndian.Uint64(data[16+i*8:])
	}
	return f, nil
}

// Counting is a Counting Bloom filter: per-position counters enable removal
// ("the EBF is maintained as a Counting Bloom filter which allows discarding
// queries once they are no longer stale"). Counters saturate at 2^16−1 to
// avoid overflow corruption.
type Counting struct {
	m        uint32
	k        uint32
	counters []uint16
	n        int
}

// NewCounting creates a counting filter with m counters and k hashes.
func NewCounting(m, k uint32) *Counting {
	if m == 0 {
		m = 8
	}
	if k == 0 {
		k = 1
	}
	return &Counting{m: m, k: k, counters: make([]uint16, m)}
}

// M returns the counter-array size.
func (c *Counting) M() uint32 { return c.m }

// K returns the hash-function count.
func (c *Counting) K() uint32 { return c.k }

// N returns the current number of contained elements.
func (c *Counting) N() int { return c.n }

// Add inserts a key, returning the bit positions that transitioned 0→1 so
// the caller can update a flat mirror incrementally ("the server-side EBF
// efficiently updates the flat Bloom filter upon changes").
func (c *Counting) Add(key string) []uint32 {
	var buf [32]uint32
	var raised []uint32
	for _, i := range indexes(key, c.m, c.k, buf[:0]) {
		if c.counters[i] == 0 {
			raised = append(raised, i)
		}
		if c.counters[i] < math.MaxUint16 {
			c.counters[i]++
		}
	}
	c.n++
	return raised
}

// Remove deletes a key, returning the positions that transitioned 1→0.
// Removing a key that was never added corrupts a plain counting filter; the
// EBF layer guarantees balanced add/remove via its expiration bookkeeping.
func (c *Counting) Remove(key string) []uint32 {
	var buf [32]uint32
	var cleared []uint32
	for _, i := range indexes(key, c.m, c.k, buf[:0]) {
		if c.counters[i] > 0 && c.counters[i] < math.MaxUint16 {
			c.counters[i]--
			if c.counters[i] == 0 {
				cleared = append(cleared, i)
			}
		}
	}
	if c.n > 0 {
		c.n--
	}
	return cleared
}

// Contains reports whether the key may be present.
func (c *Counting) Contains(key string) bool {
	var buf [32]uint32
	for _, i := range indexes(key, c.m, c.k, buf[:0]) {
		if c.counters[i] == 0 {
			return false
		}
	}
	return true
}

// Flatten produces the flat Bloom filter image of all non-zero counters.
func (c *Counting) Flatten() *Filter {
	f := New(c.m, c.k)
	for i, cnt := range c.counters {
		if cnt > 0 {
			f.SetBit(uint32(i))
		}
	}
	f.n = c.n
	return f
}

// Clear zeroes all counters.
func (c *Counting) Clear() {
	for i := range c.counters {
		c.counters[i] = 0
	}
	c.n = 0
}
