package metrics

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Mean() != 0 || h.Percentile(0.5) != 0 || h.Max() != 0 || h.Count() != 0 {
		t.Error("empty histogram should report zeros")
	}
	for _, ms := range []float64{1, 2, 3, 4, 5} {
		h.ObserveMs(ms)
	}
	if h.Mean() != 3 {
		t.Errorf("mean = %f", h.Mean())
	}
	if h.Percentile(0.5) != 3 {
		t.Errorf("p50 = %f", h.Percentile(0.5))
	}
	if h.Percentile(1.0) != 5 || h.Max() != 5 {
		t.Errorf("p100/max = %f/%f", h.Percentile(1.0), h.Max())
	}
	if h.Count() != 5 {
		t.Errorf("count = %d", h.Count())
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	h := NewHistogram()
	h.Observe(1500 * time.Microsecond)
	if got := h.Mean(); got != 1.5 {
		t.Errorf("mean = %f ms, want 1.5", got)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.ObserveMs(float64(i))
	}
	if got := h.Percentile(0.99); got != 99 {
		t.Errorf("p99 = %f", got)
	}
	if got := h.Percentile(0.01); got != 1 {
		t.Errorf("p1 = %f", got)
	}
}

func TestBuckets(t *testing.T) {
	h := NewHistogram()
	for _, ms := range []float64{0.1, 0.4, 3, 50, 500} {
		h.ObserveMs(ms)
	}
	counts := h.Buckets([]float64{0.5, 10, 100})
	want := []int{2, 1, 1, 1}
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, counts[i], want[i])
		}
	}
}

func TestCDF(t *testing.T) {
	h := NewHistogram()
	for _, ms := range []float64{3, 1, 2} {
		h.ObserveMs(ms)
	}
	xs, ps := h.CDF()
	if len(xs) != 3 || xs[0] != 1 || xs[2] != 3 {
		t.Errorf("CDF xs = %v", xs)
	}
	if ps[2] != 1.0 {
		t.Errorf("CDF must end at 1: %v", ps)
	}
	empty := NewHistogram()
	if xs, ps := empty.CDF(); xs != nil || ps != nil {
		t.Error("empty CDF should be nil")
	}
}

func TestResetAndSummary(t *testing.T) {
	h := NewHistogram()
	h.ObserveMs(5)
	if !strings.Contains(h.Summary(), "n=1") {
		t.Errorf("summary = %q", h.Summary())
	}
	h.Reset()
	if h.Count() != 0 {
		t.Error("reset incomplete")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 500; i++ {
				h.ObserveMs(r.Float64() * 100)
				_ = h.Percentile(0.9)
			}
		}(int64(w))
	}
	wg.Wait()
	if h.Count() != 4000 {
		t.Errorf("count = %d", h.Count())
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d", c.Value())
	}
}

func TestThroughput(t *testing.T) {
	start := time.Unix(0, 0)
	tp := NewThroughput(start)
	tp.Record(500)
	tp.Record(500)
	if tp.Ops() != 1000 {
		t.Errorf("ops = %d", tp.Ops())
	}
	// Unfinished: measured against "now".
	if got := tp.OpsPerSecond(start.Add(2 * time.Second)); got != 500 {
		t.Errorf("running rate = %f", got)
	}
	tp.Finish(start.Add(4 * time.Second))
	if got := tp.OpsPerSecond(start.Add(100 * time.Second)); got != 250 {
		t.Errorf("finished rate = %f", got)
	}
	zero := NewThroughput(start)
	if zero.OpsPerSecond(start) != 0 {
		t.Error("zero-duration rate should be 0")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("name", "value")
	tbl.AddRow("alpha", "1")
	tbl.AddRow("a-much-longer-name", "23456")
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[0], "value") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "----") {
		t.Errorf("separator = %q", lines[1])
	}
	// Columns align: "value" column should start at the same offset in all
	// rows.
	col := strings.Index(lines[0], "value")
	if lines[2][col:col+1] != "1" && lines[3][col:col+1] == "" {
		t.Errorf("misaligned table:\n%s", out)
	}
}
