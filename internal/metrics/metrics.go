// Package metrics provides the light-weight instrumentation used across the
// evaluation harness: latency histograms with percentiles, counters and
// windowed throughput tracking.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// Histogram collects duration samples and reports summary statistics.
// Safe for concurrent use.
type Histogram struct {
	mu      sync.Mutex
	samples []float64 // milliseconds
	sorted  bool
}

// NewHistogram creates an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	h.samples = append(h.samples, float64(d)/float64(time.Millisecond))
	h.sorted = false
	h.mu.Unlock()
}

// ObserveMs records one latency sample in milliseconds.
func (h *Histogram) ObserveMs(ms float64) {
	h.mu.Lock()
	h.samples = append(h.samples, ms)
	h.sorted = false
	h.mu.Unlock()
}

// Count returns the number of samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Mean returns the average in milliseconds.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range h.samples {
		sum += s
	}
	return sum / float64(len(h.samples))
}

// Percentile returns the p-quantile (0 < p <= 1) in milliseconds using
// nearest-rank on the sorted samples.
func (h *Histogram) Percentile(p float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	h.sortLocked()
	rank := int(math.Ceil(p*float64(n))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= n {
		rank = n - 1
	}
	return h.samples[rank]
}

// Max returns the largest sample in milliseconds.
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	h.sortLocked()
	return h.samples[len(h.samples)-1]
}

func (h *Histogram) sortLocked() {
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
}

// Buckets partitions samples into counts per boundary for histogram plots
// (Figure 8f). bounds are upper edges in milliseconds; the final bucket is
// open-ended.
func (h *Histogram) Buckets(bounds []float64) []int {
	h.mu.Lock()
	defer h.mu.Unlock()
	counts := make([]int, len(bounds)+1)
	for _, s := range h.samples {
		placed := false
		for i, b := range bounds {
			if s <= b {
				counts[i]++
				placed = true
				break
			}
		}
		if !placed {
			counts[len(bounds)]++
		}
	}
	return counts
}

// CDF returns (sorted values, cumulative probabilities) for plotting
// cumulative distribution functions (Figure 11).
func (h *Histogram) CDF() ([]float64, []float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := len(h.samples)
	if n == 0 {
		return nil, nil
	}
	h.sortLocked()
	xs := append([]float64(nil), h.samples...)
	ps := make([]float64, n)
	for i := range ps {
		ps[i] = float64(i+1) / float64(n)
	}
	return xs, ps
}

// Reset drops all samples.
func (h *Histogram) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.samples = h.samples[:0]
	h.sorted = false
}

// Summary renders "mean=… p50=… p99=… max=… (n=…)".
func (h *Histogram) Summary() string {
	return fmt.Sprintf("mean=%.2fms p50=%.2fms p99=%.2fms max=%.2fms (n=%d)",
		h.Mean(), h.Percentile(0.50), h.Percentile(0.99), h.Max(), h.Count())
}

// Counter is a concurrent event counter.
type Counter struct {
	mu sync.Mutex
	n  uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta.
func (c *Counter) Add(delta uint64) {
	c.mu.Lock()
	c.n += delta
	c.mu.Unlock()
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Throughput measures operations per second over a run.
type Throughput struct {
	mu    sync.Mutex
	ops   uint64
	start time.Time
	end   time.Time
}

// NewThroughput starts a measurement at now.
func NewThroughput(now time.Time) *Throughput {
	return &Throughput{start: now}
}

// Record adds n completed operations.
func (t *Throughput) Record(n uint64) {
	t.mu.Lock()
	t.ops += n
	t.mu.Unlock()
}

// Finish marks the end of the measurement window.
func (t *Throughput) Finish(now time.Time) {
	t.mu.Lock()
	t.end = now
	t.mu.Unlock()
}

// OpsPerSecond returns the measured rate (using now when unfinished).
func (t *Throughput) OpsPerSecond(now time.Time) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	end := t.end
	if end.IsZero() {
		end = now
	}
	d := end.Sub(t.start).Seconds()
	if d <= 0 {
		return 0
	}
	return float64(t.ops) / d
}

// Ops returns the raw operation count.
func (t *Throughput) Ops() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ops
}

// Table renders an aligned text table for the experiment harness output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends one formatted row.
func (t *Table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(widths) {
				for pad := len(c); pad < widths[i]; pad++ {
					sb.WriteByte(' ')
				}
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return sb.String()
}
