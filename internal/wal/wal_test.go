package wal

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"quaestor/internal/document"
)

func openT(t *testing.T, dir string, opts *Options) *Log {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

func putRec(seq uint64, table, id string, version int64) Record {
	return Record{Seq: seq, Kind: KindPut, Table: table,
		Doc: &document.Document{ID: id, Version: version, Fields: map[string]any{"n": int64(seq)}}}
}

func collect(t *testing.T, dir string) ([]Record, ScanResult) {
	t.Helper()
	var recs []Record
	res, err := Scan(dir, func(r *Record) error {
		recs = append(recs, *r)
		return nil
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	return recs, res
}

func TestAppendScanRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, nil)
	want := []Record{
		{Kind: KindCreateTable, Table: "posts"},
		{Kind: KindCreateIndex, Table: "posts", Path: "tags"},
		putRec(1, "posts", "p1", 1),
		{Seq: 2, Kind: KindDelete, Table: "posts", ID: "p1", Version: 2},
	}
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	got, res := collect(t, dir)
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	if res.TornTail || res.LastSeq != 2 || res.Records != 4 {
		t.Errorf("scan result = %+v", res)
	}
	for i, g := range got {
		w := want[i]
		if g.Kind != w.Kind || g.Seq != w.Seq || g.Table != w.Table || g.ID != w.ID || g.Path != w.Path || g.Version != w.Version {
			t.Errorf("record %d = %+v, want %+v", i, g, w)
		}
		if w.Doc != nil && (g.Doc == nil || !g.Doc.Equal(w.Doc) || g.Doc.Version != w.Doc.Version) {
			t.Errorf("record %d doc = %+v, want %+v", i, g.Doc, w.Doc)
		}
	}
}

func TestAppendAfterClose(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, nil)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(putRec(1, "t", "a", 1)); err != ErrClosed {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, nil)
	for seq := uint64(1); seq <= 5; seq++ {
		if err := l.Append(putRec(seq, "t", "a", int64(seq))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: chop bytes off the last record.
	seg := filepath.Join(dir, segmentName(1))
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	recs, res := collect(t, dir)
	if !res.TornTail {
		t.Error("scan should report a torn tail")
	}
	if len(recs) != 4 || res.LastSeq != 4 {
		t.Fatalf("got %d records (last seq %d), want 4 (last seq 4)", len(recs), res.LastSeq)
	}

	// Reopen: the torn tail is truncated and appends continue cleanly.
	l = openT(t, dir, nil)
	if err := l.Append(putRec(6, "t", "a", 6)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, res = collect(t, dir)
	if res.TornTail || len(recs) != 5 || recs[4].Seq != 6 {
		t.Fatalf("after reopen: torn=%v records=%d", res.TornTail, len(recs))
	}
}

func TestGarbageTailTolerated(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, nil)
	if err := l.Append(putRec(1, "t", "a", 1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, segmentName(1))
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("\x10\x00\x00\x00garbage-without-valid-crc")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	recs, res := collect(t, dir)
	if !res.TornTail || len(recs) != 1 {
		t.Fatalf("torn=%v records=%d, want torn with 1 record", res.TornTail, len(recs))
	}
}

func TestSegmentRotationAndRemove(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, &Options{SegmentBytes: 512, Fsync: FsyncNever})
	for seq := uint64(1); seq <= 50; seq++ {
		if err := l.Append(putRec(seq, "t", "a", int64(seq))); err != nil {
			t.Fatal(err)
		}
		// Fire-and-forget policies ack before the write; Sync is the
		// queue barrier that splits the appends into multiple commit
		// batches (rotation is checked per batch) and makes Stats
		// deterministic.
		if seq%10 == 0 {
			if err := l.Sync(); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := l.Stats()
	if st.Segments < 2 {
		t.Fatalf("expected rotation, got %d segments", st.Segments)
	}

	sealed, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if len(sealed) != st.Segments {
		t.Fatalf("sealed %d segments, want %d", len(sealed), st.Segments)
	}
	if err := l.Remove(sealed); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().Segments; got != 1 {
		t.Fatalf("segments after remove = %d, want 1", got)
	}
	// Later records live in the new segment and still scan.
	if err := l.Append(putRec(51, "t", "b", 1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _ := collect(t, dir)
	if len(recs) != 1 || recs[0].Seq != 51 {
		t.Fatalf("after truncation got %d records, want just seq 51", len(recs))
	}
}

func TestRemoveRejectsForeignPaths(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, nil)
	defer l.Close()
	other := filepath.Join(t.TempDir(), "wal-00000001.seg")
	if err := l.Remove([]string{other}); err == nil {
		t.Fatal("Remove accepted a path outside the log dir")
	}
	if err := l.Remove([]string{filepath.Join(dir, "snapshot.db")}); err == nil {
		t.Fatal("Remove accepted a non-segment file")
	}
}

func TestGroupCommitBatchesFsyncs(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, &Options{Fsync: FsyncAlways})
	const writers, perWriter = 64, 20
	var wg sync.WaitGroup
	var seq uint64
	var seqMu sync.Mutex
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				seqMu.Lock()
				seq++
				s := seq
				seqMu.Unlock()
				if err := l.Append(putRec(s, "t", string(rune('a'+w)), int64(i+1))); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := l.Stats()
	if st.Appends != writers*perWriter {
		t.Fatalf("appends = %d, want %d", st.Appends, writers*perWriter)
	}
	// Group commit must batch: far fewer fsyncs than appends even under
	// fsync=always.
	if st.Fsyncs >= st.Appends {
		t.Errorf("fsyncs (%d) not batched below appends (%d)", st.Fsyncs, st.Appends)
	}
	if st.MeanBatch <= 1.0 {
		t.Errorf("mean batch size %.2f, expected > 1 with 64 concurrent writers", st.MeanBatch)
	}
	var histTotal uint64
	for _, b := range st.BatchSizes {
		histTotal += b.Count
	}
	if histTotal != st.Batches {
		t.Errorf("batch histogram counts %d batches, stats say %d", histTotal, st.Batches)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, res := collect(t, dir)
	if len(recs) != writers*perWriter || res.TornTail {
		t.Fatalf("scan found %d records (torn=%v), want %d", len(recs), res.TornTail, writers*perWriter)
	}
}

func TestFsyncIntervalSyncsInBackground(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, &Options{Fsync: FsyncInterval, FsyncInterval: 5 * time.Millisecond})
	if err := l.Append(putRec(1, "t", "a", 1)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for l.Stats().Fsyncs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("interval fsync never fired")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotRoundtrip(t *testing.T) {
	dir := t.TempDir()
	w, err := NewSnapshotWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	meta := SnapshotMeta{Seq: 42, Tables: []TableMeta{{Name: "posts", Indexes: []string{"author", "tags"}}}, CreatedAt: time.Now().UTC()}
	if err := w.Meta(meta); err != nil {
		t.Fatal(err)
	}
	docs := []*document.Document{
		document.New("p1", map[string]any{"title": "hello", "n": 1}),
		document.New("p2", map[string]any{"tags": []any{"a", "b"}}),
	}
	for _, d := range docs {
		if err := w.Doc("posts", d); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, SnapshotName+".tmp")); !os.IsNotExist(err) {
		t.Error("temp snapshot left behind after commit")
	}

	var gotMeta SnapshotMeta
	var got []*document.Document
	loaded, err := LoadSnapshot(dir,
		func(m SnapshotMeta) error { gotMeta = m; return nil },
		func(table string, doc *document.Document) error {
			if table != "posts" {
				t.Errorf("doc table = %q", table)
			}
			got = append(got, doc)
			return nil
		})
	if err != nil || !loaded {
		t.Fatalf("LoadSnapshot: loaded=%v err=%v", loaded, err)
	}
	if gotMeta.Seq != 42 || len(gotMeta.Tables) != 1 || len(gotMeta.Tables[0].Indexes) != 2 {
		t.Errorf("meta = %+v", gotMeta)
	}
	if len(got) != 2 || !got[0].Equal(docs[0]) || !got[1].Equal(docs[1]) {
		t.Errorf("docs did not roundtrip: %+v", got)
	}
}

func TestLoadSnapshotMissing(t *testing.T) {
	loaded, err := LoadSnapshot(t.TempDir(), nil, nil)
	if loaded || err != nil {
		t.Fatalf("loaded=%v err=%v, want no snapshot", loaded, err)
	}
}

func TestLoadSnapshotTruncatedFails(t *testing.T) {
	dir := t.TempDir()
	w, err := NewSnapshotWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Meta(SnapshotMeta{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Doc("t", document.New("a", nil)); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, SnapshotName)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-4); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshot(dir, func(SnapshotMeta) error { return nil }, func(string, *document.Document) error { return nil }); err == nil {
		t.Fatal("truncated snapshot loaded without error")
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for in, want := range map[string]FsyncPolicy{"always": FsyncAlways, "interval": FsyncInterval, "never": FsyncNever, "": FsyncAlways} {
		got, err := ParseFsyncPolicy(in)
		if err != nil || got != want {
			t.Errorf("ParseFsyncPolicy(%q) = %v, %v", in, got, err)
		}
		if in != "" && got.String() != in {
			t.Errorf("String() = %q, want %q", got.String(), in)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Error("bad policy accepted")
	}
}
