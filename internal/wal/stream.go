package wal

import (
	"encoding/json"
	"io"

	"quaestor/internal/document"
)

// This file is the package's streaming surface: the CRC framing and the
// snapshot format exported over io.Reader/io.Writer instead of files.
// Log-shipping replication moves both across the network — a replica
// bootstraps from a streamed snapshot and catches up from shipped sealed
// segments — and other subsystems (kvstore persistence) reuse the raw
// framing for their own state.

// AppendFrame appends one CRC-framed payload to buf — the WAL's on-disk
// frame format (length + CRC-32C header). The counterpart of FrameReader.
func AppendFrame(buf, payload []byte) []byte {
	return appendPayloadFrame(buf, payload)
}

// FrameReader iterates CRC-framed payloads from a byte stream. Next
// returns io.EOF at a clean end of stream and ErrTorn for an incomplete
// or corrupt frame.
type FrameReader struct {
	fr frameReader
}

// NewFrameReader wraps r. Callers that care about read amplification
// should pass a buffered reader.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{fr: frameReader{r: r}}
}

// Next returns the next frame's payload. The returned slice is freshly
// allocated and safe to retain.
func (r *FrameReader) Next() ([]byte, error) {
	return r.fr.nextPayload()
}

// ValidLen returns how many bytes of fully-valid frames have been
// consumed so far.
func (r *FrameReader) ValidLen() int64 { return r.fr.validLen }

// ScanReader decodes log records from a framed byte stream — the read
// side of segment shipping, where a replica consumes sealed segments a
// primary serves over the network. Unlike Scan, which tolerates a torn
// tail in the last on-disk segment, every frame here must be intact
// (sealed segments were fsynced whole before shipping); a torn frame
// returns ErrTorn, typically a connection cut mid-transfer.
func ScanReader(r io.Reader, fn func(*Record) error) error {
	fr := &frameReader{r: r}
	var rec Record
	for {
		switch err := fr.next(&rec); err {
		case nil:
			if err := fn(&rec); err != nil {
				return err
			}
		case io.EOF:
			return nil
		default:
			return err
		}
	}
}

// SnapshotStreamWriter writes the snapshot frame sequence (meta, docs,
// end) to an arbitrary writer. The file-based SnapshotWriter wraps it;
// replication streams it straight onto an HTTP response.
type SnapshotStreamWriter struct {
	w     io.Writer
	buf   []byte
	docs  int
	bytes int64
	err   error
}

// NewSnapshotStreamWriter starts a snapshot stream on w. Call Meta once,
// then Doc per document, then End.
func NewSnapshotStreamWriter(w io.Writer) *SnapshotStreamWriter {
	return &SnapshotStreamWriter{w: w}
}

func (w *SnapshotStreamWriter) writeFrame(fr *snapFrame) error {
	if w.err != nil {
		return w.err
	}
	w.err = func() error {
		payload, err := json.Marshal(fr)
		if err != nil {
			return err
		}
		w.buf = appendPayloadFrame(w.buf[:0], payload)
		n, err := w.w.Write(w.buf)
		w.bytes += int64(n)
		return err
	}()
	return w.err
}

// Meta writes the snapshot header.
func (w *SnapshotStreamWriter) Meta(m SnapshotMeta) error {
	return w.writeFrame(&snapFrame{Kind: kindSnapMeta, Meta: &m})
}

// Doc writes one document of a table.
func (w *SnapshotStreamWriter) Doc(table string, doc *document.Document) error {
	w.docs++
	return w.writeFrame(&snapFrame{Kind: kindSnapDoc, Table: table, Doc: doc})
}

// End writes the end frame whose doc count guards against truncation.
func (w *SnapshotStreamWriter) End() error {
	return w.writeFrame(&snapFrame{Kind: kindSnapEnd, Docs: w.docs})
}

// Docs returns the number of documents written so far.
func (w *SnapshotStreamWriter) Docs() int { return w.docs }

// Bytes returns the bytes written so far.
func (w *SnapshotStreamWriter) Bytes() int64 { return w.bytes }
