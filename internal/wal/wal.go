package wal

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// FsyncPolicy controls when the committer calls fsync.
type FsyncPolicy int

const (
	// FsyncAlways fsyncs once per commit batch — every acknowledged write
	// is on stable storage. Group commit amortizes the cost: with many
	// concurrent writers the fsyncs-per-write ratio drops well below one.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval acknowledges once the record is enqueued (in order)
	// for the committer and fsyncs at most once per interval (plus on
	// rotation and close). A crash loses at most the last interval of
	// acknowledged writes; write errors wedge the log and fail all
	// subsequent appends.
	FsyncInterval
	// FsyncNever acknowledges once the record is enqueued and leaves
	// flushing to the OS page cache (fsync still runs on rotation and
	// clean close).
	FsyncNever
)

// String implements fmt.Stringer.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	default:
		return fmt.Sprintf("FsyncPolicy(%d)", int(p))
	}
}

// ParseFsyncPolicy parses the flag/JSON spelling produced by String.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always", "":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or never)", s)
}

// Options configures a Log. The zero value is usable: fsync=always,
// 8 MiB segments.
type Options struct {
	// Fsync selects the durability/latency trade-off (default FsyncAlways).
	Fsync FsyncPolicy
	// FsyncInterval is the maximum time between fsyncs under
	// FsyncInterval (default 25ms).
	FsyncInterval time.Duration
	// SegmentBytes is the rotation threshold (default 8 MiB).
	SegmentBytes int64
	// QueueDepth bounds the append queue; full queues apply backpressure
	// to writers (default 1024).
	QueueDepth int
	// OnCommit, when set, is invoked on the committer goroutine after
	// every group commit with the payloads attached via EnqueueWith, in
	// batch (enqueue) order, and the group's shared outcome — nil when
	// the write (and, under FsyncAlways, the fsync) succeeded. It runs
	// before the group's waiters are woken, so a successful Wait implies
	// the hook already observed the record. The store's ordered
	// change-stream fan-out hangs off this hook. The hook must not call
	// back into the Log.
	OnCommit func(payloads []any, err error)
}

func (o *Options) withDefaults() Options {
	out := Options{Fsync: FsyncAlways, FsyncInterval: 25 * time.Millisecond, SegmentBytes: 8 << 20, QueueDepth: 1024}
	if o == nil {
		return out
	}
	out.Fsync = o.Fsync
	if o.FsyncInterval > 0 {
		out.FsyncInterval = o.FsyncInterval
	}
	if o.SegmentBytes > 0 {
		out.SegmentBytes = o.SegmentBytes
	}
	if o.QueueDepth > 0 {
		out.QueueDepth = o.QueueDepth
	}
	out.OnCommit = o.OnCommit
	return out
}

// batchBuckets are the upper bounds of the commit-batch-size histogram
// (records per write+fsync); the last bucket is open-ended.
var batchBuckets = []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// BatchBucket is one histogram bucket of commit batch sizes.
type BatchBucket struct {
	// Le is the bucket's inclusive upper bound (0 = overflow bucket).
	Le    int    `json:"le"`
	Count uint64 `json:"count"`
}

// Stats is a point-in-time snapshot of log activity.
type Stats struct {
	Dir          string        `json:"dir"`
	Fsync        string        `json:"fsync"`
	Segments     int           `json:"segments"`
	SegmentBytes int64         `json:"segmentBytes"` // total on-disk log size
	Appends      uint64        `json:"appends"`      // records committed
	Batches      uint64        `json:"batches"`      // write calls issued
	Fsyncs       uint64        `json:"fsyncs"`
	MeanBatch    float64       `json:"meanBatch"` // appends per write call
	BatchSizes   []BatchBucket `json:"batchSizes"`
}

// Log is a segmented write-ahead log. Appends from any number of
// goroutines funnel into a single committer goroutine that group-commits
// them; all other methods are safe for concurrent use.
type Log struct {
	dir  string
	opts Options

	// closeMu serializes Enqueue against Close so no append can slip into
	// the queue after the committer was told to exit.
	closeMu sync.RWMutex
	closed  bool
	queue   chan *request
	done    chan struct{}
	// failed latches the first write/fsync error so fire-and-forget
	// appends (FsyncInterval/FsyncNever ack before the write) surface it
	// on the next call.
	failed atomic.Pointer[error]
	// diskSize tracks the total on-disk log size so hot-path callers
	// (the auto-snapshot threshold check runs once per commit batch) can
	// read it without taking statsMu or summing the segment map.
	diskSize atomic.Int64

	// Committer-owned state (no locking needed).
	f       *os.File
	segNum  int
	segSize int64
	dirty   bool  // unsynced bytes in f
	wedged  error // sticky write/fsync failure; fails all later appends
	wbuf    []byte
	pbuf    []any // scratch payload batch for the OnCommit hook

	// Shared stats, guarded by statsMu.
	statsMu    sync.Mutex
	segs       map[int]int64 // segment number -> size
	appends    uint64
	batches    uint64
	fsyncs     uint64
	batchSizes []uint64 // len(batchBuckets)+1, last = overflow
}

type ctl int

const (
	ctlNone ctl = iota
	ctlSync
	ctlRotate
	ctlClose
)

type request struct {
	// frame is the record pre-encoded by Enqueue in the writer's
	// goroutine, so encoding parallelizes across writers instead of
	// serializing in the committer.
	frame []byte
	// payload is an opaque value handed to Options.OnCommit once the
	// record's group commits (nil payloads are not reported).
	payload any
	done    chan error // buffered(1); receives the commit outcome
	ctl     ctl
	reply   chan ctlReply
}

type ctlReply struct {
	sealed []string
	err    error
}

// Waiter is a pending append's handle; Wait blocks until the record's
// batch has committed (per the fsync policy) and returns its outcome.
// A resolved Waiter (fire-and-forget policies, early errors) carries the
// outcome directly and never allocates a channel.
type Waiter struct {
	ch  chan error
	err error
}

// Wait blocks until the append is committed.
func (w *Waiter) Wait() error {
	if w.ch == nil {
		return w.err
	}
	return <-w.ch
}

func resolvedWaiter(err error) *Waiter { return &Waiter{err: err} }

func segmentName(n int) string { return fmt.Sprintf("wal-%08d.seg", n) }

// listSegments returns the segment numbers in dir, sorted ascending.
func listSegments(dir string) ([]int, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var nums []int
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
			continue
		}
		n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg"))
		if err != nil {
			continue
		}
		nums = append(nums, n)
	}
	sort.Ints(nums)
	return nums, nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Open opens (or creates) the log under dir, truncates a torn tail left
// by a crash in the last segment, and starts the committer. Callers that
// need the log's contents must Scan before appending.
func Open(dir string, opts *Options) (*Log, error) {
	o := opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	nums, err := listSegments(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: listing %s: %w", dir, err)
	}
	l := &Log{
		dir:        dir,
		opts:       o,
		queue:      make(chan *request, o.QueueDepth),
		done:       make(chan struct{}),
		segs:       map[int]int64{},
		batchSizes: make([]uint64, len(batchBuckets)+1),
	}
	for _, n := range nums[:max(0, len(nums)-1)] {
		fi, err := os.Stat(filepath.Join(dir, segmentName(n)))
		if err != nil {
			return nil, err
		}
		l.segs[n] = fi.Size()
	}
	if len(nums) == 0 {
		l.segNum = 1
		if err := l.createSegment(); err != nil {
			return nil, err
		}
	} else {
		// Reopen the last segment for append, dropping any torn tail so
		// new records follow the last fully-valid frame.
		l.segNum = nums[len(nums)-1]
		path := filepath.Join(dir, segmentName(l.segNum))
		valid, _, err := scanSegment(path, nil)
		if err != nil {
			return nil, err
		}
		f, err := os.OpenFile(path, os.O_RDWR, 0o644)
		if err != nil {
			return nil, err
		}
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: truncating torn tail of %s: %w", path, err)
		}
		if _, err := f.Seek(valid, 0); err != nil {
			f.Close()
			return nil, err
		}
		l.f = f
		l.segSize = valid
		l.segs[l.segNum] = valid
	}
	for _, sz := range l.segs {
		l.diskSize.Add(sz)
	}
	go l.run()
	return l, nil
}

// SizeBytes returns the log's total on-disk size (all segments). Cheap:
// a single atomic load, safe on any hot path.
func (l *Log) SizeBytes() int64 { return l.diskSize.Load() }

func (l *Log) createSegment() error {
	path := filepath.Join(l.dir, segmentName(l.segNum))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.segSize = 0
	l.statsMu.Lock()
	l.segs[l.segNum] = 0
	l.statsMu.Unlock()
	return nil
}

// Enqueue submits one record for group commit and returns immediately;
// the returned Waiter reports the outcome. Enqueue is cheap enough to
// call inside a store shard's critical section, which is what guarantees
// per-key record order in the log matches the serialization order.
//
// Under FsyncAlways the Waiter resolves after the record's batch is
// fsynced; under FsyncInterval/FsyncNever it resolves as soon as the
// record is in the committer's ordered queue (those policies already
// accept losing an acknowledged tail on crash), with any later write
// failure latched and returned by subsequent calls.
func (l *Log) Enqueue(rec Record) *Waiter { return l.EnqueueWith(rec, nil) }

// EnqueueWith is Enqueue with an opaque payload attached: once the
// record's group commits, Options.OnCommit receives the payload (with the
// group's outcome) before the record's waiter resolves. A caller that
// received an error Waiter from EnqueueWith must assume the hook never
// saw the payload — the record was rejected before it reached the queue.
func (l *Log) EnqueueWith(rec Record, payload any) *Waiter {
	if errp := l.failed.Load(); errp != nil {
		return resolvedWaiter(*errp)
	}
	frame, err := appendFrame(nil, &rec)
	if err != nil {
		return resolvedWaiter(err)
	}
	req := &request{frame: frame, payload: payload}
	var w *Waiter
	if l.opts.Fsync == FsyncAlways {
		w = &Waiter{ch: make(chan error, 1)}
		req.done = w.ch
	}
	l.closeMu.RLock()
	if l.closed {
		l.closeMu.RUnlock()
		return resolvedWaiter(ErrClosed)
	}
	l.queue <- req
	l.closeMu.RUnlock()
	if w == nil {
		return resolvedWaiter(nil)
	}
	return w
}

// Append submits one record and blocks until it commits.
func (l *Log) Append(rec Record) error { return l.Enqueue(rec).Wait() }

// Sync forces an fsync of the active segment.
func (l *Log) Sync() error {
	reply, err := l.control(ctlSync)
	if err != nil {
		return err
	}
	return reply.err
}

// Rotate seals the active segment (fsync + close) and starts a new one.
// It returns the paths of all sealed segments, which a caller that has
// just snapshotted may pass to Remove.
func (l *Log) Rotate() ([]string, error) {
	reply, err := l.control(ctlRotate)
	if err != nil {
		return nil, err
	}
	return reply.sealed, reply.err
}

func (l *Log) control(c ctl) (ctlReply, error) {
	req := &request{ctl: c, reply: make(chan ctlReply, 1)}
	l.closeMu.RLock()
	if l.closed {
		l.closeMu.RUnlock()
		return ctlReply{}, ErrClosed
	}
	l.queue <- req
	l.closeMu.RUnlock()
	return <-req.reply, nil
}

// Remove deletes sealed segment files, typically after a snapshot has
// made them redundant. Paths not belonging to this log's directory are
// rejected; the active segment can never be in the sealed list.
func (l *Log) Remove(sealed []string) error {
	for _, p := range sealed {
		if filepath.Dir(p) != filepath.Clean(l.dir) {
			return fmt.Errorf("wal: refusing to remove %s: outside log dir", p)
		}
		n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(filepath.Base(p), "wal-"), ".seg"))
		if err != nil {
			return fmt.Errorf("wal: refusing to remove %s: not a segment", p)
		}
		if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
			return err
		}
		l.statsMu.Lock()
		l.diskSize.Add(-l.segs[n])
		delete(l.segs, n)
		l.statsMu.Unlock()
	}
	return syncDir(l.dir)
}

// Close flushes pending appends, fsyncs and closes the active segment,
// and stops the committer. Appends after Close fail with ErrClosed.
func (l *Log) Close() error {
	l.closeMu.Lock()
	if l.closed {
		l.closeMu.Unlock()
		return nil
	}
	l.closed = true
	req := &request{ctl: ctlClose, reply: make(chan ctlReply, 1)}
	l.queue <- req
	l.closeMu.Unlock()
	reply := <-req.reply
	<-l.done
	return reply.err
}

// Stats reports activity counters and the batch-size histogram.
func (l *Log) Stats() Stats {
	l.statsMu.Lock()
	defer l.statsMu.Unlock()
	st := Stats{
		Dir:      l.dir,
		Fsync:    l.opts.Fsync.String(),
		Segments: len(l.segs),
		Appends:  l.appends,
		Batches:  l.batches,
		Fsyncs:   l.fsyncs,
	}
	for _, sz := range l.segs {
		st.SegmentBytes += sz
	}
	if l.batches > 0 {
		st.MeanBatch = float64(l.appends) / float64(l.batches)
	}
	for i, le := range batchBuckets {
		if l.batchSizes[i] > 0 {
			st.BatchSizes = append(st.BatchSizes, BatchBucket{Le: le, Count: l.batchSizes[i]})
		}
	}
	if over := l.batchSizes[len(batchBuckets)]; over > 0 {
		st.BatchSizes = append(st.BatchSizes, BatchBucket{Le: 0, Count: over})
	}
	return st
}

// run is the committer: it drains the queue, writes each drained batch
// with a single write call, fsyncs per policy, and wakes the waiters.
func (l *Log) run() {
	defer close(l.done)
	var tick <-chan time.Time
	if l.opts.Fsync == FsyncInterval {
		t := time.NewTicker(l.opts.FsyncInterval)
		defer t.Stop()
		tick = t.C
	}
	batch := make([]*request, 0, 256)
	for {
		var first *request
		if tick != nil {
			select {
			case first = <-l.queue:
			case <-tick:
				if l.dirty && l.wedged == nil {
					if err := l.fsync(); err != nil {
						l.wedged = err
						l.failed.Store(&err)
					}
				}
				continue
			}
		} else {
			first = <-l.queue
		}
		batch = append(batch[:0], first)
	drain:
		for len(batch) < cap(batch) {
			select {
			case r := <-l.queue:
				batch = append(batch, r)
			default:
				break drain
			}
		}
		if l.processBatch(batch) {
			return
		}
	}
}

// processBatch commits the records of one drained batch as a group,
// executing any interleaved control requests in order. It reports
// whether the committer should exit.
func (l *Log) processBatch(batch []*request) bool {
	group := make([]*request, 0, len(batch))
	flush := func() {
		if len(group) > 0 {
			l.commitGroup(group)
			group = group[:0]
		}
	}
	for _, req := range batch {
		if req.ctl == ctlNone {
			group = append(group, req)
			continue
		}
		flush()
		switch req.ctl {
		case ctlSync:
			req.reply <- ctlReply{err: l.fsync()}
		case ctlRotate:
			sealed, err := l.rotate()
			req.reply <- ctlReply{sealed: sealed, err: err}
		case ctlClose:
			err := l.fsync()
			if cerr := l.f.Close(); err == nil {
				err = cerr
			}
			req.reply <- ctlReply{err: err}
			return true
		}
	}
	flush()
	return false
}

// commitGroup writes one group of records with a single write call and
// applies the fsync policy, then reports the shared outcome to every
// waiter.
func (l *Log) commitGroup(group []*request) {
	err := l.wedged
	if err == nil {
		l.wbuf = l.wbuf[:0]
		for _, req := range group {
			l.wbuf = append(l.wbuf, req.frame...)
		}
		if l.segSize > 0 && l.segSize+int64(len(l.wbuf)) > l.opts.SegmentBytes {
			_, err = l.rotate()
		}
		if err == nil {
			_, err = l.f.Write(l.wbuf)
		}
		if err == nil {
			l.segSize += int64(len(l.wbuf))
			l.dirty = true
			l.diskSize.Add(int64(len(l.wbuf)))
			l.statsMu.Lock()
			l.segs[l.segNum] = l.segSize
			l.statsMu.Unlock()
			if l.opts.Fsync == FsyncAlways {
				err = l.fsync()
			}
		}
		if err != nil {
			// Half-written batch: fail everything from here on, including
			// fire-and-forget appends that were already acknowledged.
			l.wedged = err
			l.failed.Store(&err)
		}
	}
	l.statsMu.Lock()
	l.batches++
	if err == nil {
		l.appends += uint64(len(group))
	}
	// SearchInts lands on the first bucket whose bound covers the batch;
	// len(batchBuckets) is the open-ended overflow slot.
	l.batchSizes[sort.SearchInts(batchBuckets, len(group))]++
	l.statsMu.Unlock()
	if l.opts.OnCommit != nil {
		l.pbuf = l.pbuf[:0]
		for _, req := range group {
			if req.payload != nil {
				l.pbuf = append(l.pbuf, req.payload)
			}
		}
		if len(l.pbuf) > 0 {
			// Before waking the waiters: an acknowledged write is already
			// past the hook (the change stream never trails a returned
			// fsync=always ack).
			l.opts.OnCommit(l.pbuf, err)
		}
	}
	for _, req := range group {
		if req.done != nil {
			req.done <- err
		}
	}
}

func (l *Log) fsync() error {
	err := l.f.Sync()
	if err == nil {
		l.dirty = false
		l.statsMu.Lock()
		l.fsyncs++
		l.statsMu.Unlock()
	}
	return err
}

// rotate seals the active segment and opens the next one, returning the
// paths of all sealed segments.
func (l *Log) rotate() ([]string, error) {
	if err := l.fsync(); err != nil {
		return nil, err
	}
	if err := l.f.Close(); err != nil {
		return nil, err
	}
	l.segNum++
	if err := l.createSegment(); err != nil {
		return nil, err
	}
	l.statsMu.Lock()
	var sealed []string
	for n := range l.segs {
		if n != l.segNum {
			sealed = append(sealed, filepath.Join(l.dir, segmentName(n)))
		}
	}
	l.statsMu.Unlock()
	sort.Strings(sealed)
	return sealed, nil
}

// ScanResult summarizes one recovery scan of the log directory.
type ScanResult struct {
	Segments int
	Bytes    int64
	Records  int
	LastSeq  uint64 // highest Seq seen among valid records
	TornTail bool   // last segment ended in an incomplete/corrupt frame
}

// Scan reads every record in dir's segments in file order, invoking fn
// for each. A torn frame at the tail of the last segment ends the scan
// without error (recovery truncates it on Open); a bad frame anywhere
// else is corruption and fails the scan. A missing dir scans as empty.
func Scan(dir string, fn func(*Record) error) (ScanResult, error) {
	var res ScanResult
	nums, err := listSegments(dir)
	if os.IsNotExist(err) {
		return res, nil
	}
	if err != nil {
		return res, err
	}
	res.Segments = len(nums)
	for i, n := range nums {
		path := filepath.Join(dir, segmentName(n))
		last := i == len(nums)-1
		valid, torn, err := scanSegment(path, func(rec *Record) error {
			res.Records++
			if rec.Seq > res.LastSeq {
				res.LastSeq = rec.Seq
			}
			return fn(rec)
		})
		if err != nil {
			return res, err
		}
		res.Bytes += valid
		if torn {
			if !last {
				return res, fmt.Errorf("wal: corrupt frame mid-log in %s", path)
			}
			res.TornTail = true
		}
	}
	return res, nil
}

// scanSegment reads one segment, returning the length of its valid
// prefix and whether a torn frame cut the scan short. fn may be nil.
func scanSegment(path string, fn func(*Record) error) (validLen int64, torn bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, false, err
	}
	defer f.Close()
	fr := &frameReader{r: bufio.NewReaderSize(f, 1<<16)}
	var rec Record
	for {
		switch err := fr.next(&rec); err {
		case nil:
			if fn != nil {
				if err := fn(&rec); err != nil {
					return fr.validLen, false, err
				}
			}
		case ErrTorn:
			return fr.validLen, true, nil
		default:
			if err == io.EOF {
				return fr.validLen, false, nil
			}
			return fr.validLen, false, err
		}
	}
}
