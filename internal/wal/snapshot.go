package wal

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"quaestor/internal/document"
)

// SnapshotName is the current snapshot's file name inside the data dir.
// Snapshots are written to a temp file, fsynced and atomically renamed
// over this name, so a crash mid-snapshot leaves the previous one intact.
const SnapshotName = "snapshot.db"

// TableMeta records one table's identity and secondary-index paths in a
// snapshot's meta frame.
type TableMeta struct {
	Name    string   `json:"name"`
	Indexes []string `json:"indexes,omitempty"`
}

// SnapshotMeta is a snapshot's header.
type SnapshotMeta struct {
	// Seq is the store sequence captured before the shard scan began; log
	// records with Seq > Seq must be replayed over the snapshot.
	Seq       uint64      `json:"seq"`
	Tables    []TableMeta `json:"tables"`
	CreatedAt time.Time   `json:"createdAt"`
}

// snapFrame is the on-disk shape of every snapshot frame.
type snapFrame struct {
	Kind  Kind               `json:"kind"`
	Meta  *SnapshotMeta      `json:"meta,omitempty"`
	Table string             `json:"table,omitempty"`
	Doc   *document.Document `json:"doc,omitempty"`
	Docs  int                `json:"docs,omitempty"` // end frame: expected doc count
}

// SnapshotWriter streams a point-in-time snapshot to disk: a
// SnapshotStreamWriter over a temp file with an atomic-rename Commit.
type SnapshotWriter struct {
	*SnapshotStreamWriter
	dataDir string
	tmp     string
	f       *os.File
	bw      *bufio.Writer
}

// NewSnapshotWriter starts a snapshot in dataDir. Call Meta once, then
// Doc per document, then Commit; Abort discards a partial snapshot.
func NewSnapshotWriter(dataDir string) (*SnapshotWriter, error) {
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		return nil, err
	}
	tmp := filepath.Join(dataDir, SnapshotName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: creating snapshot temp: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	return &SnapshotWriter{SnapshotStreamWriter: NewSnapshotStreamWriter(bw), dataDir: dataDir, tmp: tmp, f: f, bw: bw}, nil
}

// Commit seals the snapshot (end frame + fsync) and atomically renames
// it into place.
func (w *SnapshotWriter) Commit() error {
	if err := w.End(); err != nil {
		w.Abort()
		return err
	}
	if err := w.bw.Flush(); err != nil {
		w.Abort()
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.Abort()
		return err
	}
	if err := w.f.Close(); err != nil {
		os.Remove(w.tmp)
		return err
	}
	if err := os.Rename(w.tmp, filepath.Join(w.dataDir, SnapshotName)); err != nil {
		os.Remove(w.tmp)
		return err
	}
	return syncDir(w.dataDir)
}

// Abort discards the partial snapshot.
func (w *SnapshotWriter) Abort() {
	w.f.Close()
	os.Remove(w.tmp)
}

// LoadSnapshot streams dataDir's current snapshot: onMeta fires first
// with the header, then onDoc per document. It returns false when no
// snapshot exists. An incomplete or corrupt snapshot is an error — the
// atomic rename in Commit means one should never occur.
func LoadSnapshot(dataDir string, onMeta func(SnapshotMeta) error, onDoc func(table string, doc *document.Document) error) (bool, error) {
	path := filepath.Join(dataDir, SnapshotName)
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	defer f.Close()
	if err := ReadSnapshotStream(bufio.NewReaderSize(f, 1<<16), onMeta, onDoc); err != nil {
		return true, fmt.Errorf("wal: reading snapshot %s: %w", path, err)
	}
	return true, nil
}

// ReadSnapshotStream decodes one snapshot frame sequence from r (the
// format SnapshotStreamWriter produces): onMeta fires first with the
// header, then onDoc per document. The end frame's doc count is
// verified, so a truncated stream — a snapshot bootstrap cut by a
// connection loss — is always detected.
func ReadSnapshotStream(r io.Reader, onMeta func(SnapshotMeta) error, onDoc func(table string, doc *document.Document) error) error {
	fr := &frameReader{r: r}
	docs, sawMeta, sawEnd := 0, false, false
	for !sawEnd {
		payload, err := fr.nextPayload()
		if err != nil {
			if err == io.EOF {
				break
			}
			return err
		}
		var sf snapFrame
		if err := json.Unmarshal(payload, &sf); err != nil {
			return fmt.Errorf("decoding snapshot frame: %w", err)
		}
		switch sf.Kind {
		case kindSnapMeta:
			sawMeta = true
			if err := onMeta(*sf.Meta); err != nil {
				return err
			}
		case kindSnapDoc:
			if !sawMeta {
				return errors.New("snapshot: doc before meta")
			}
			docs++
			if err := onDoc(sf.Table, sf.Doc); err != nil {
				return err
			}
		case kindSnapEnd:
			sawEnd = true
			if sf.Docs != docs {
				return fmt.Errorf("snapshot: end frame expects %d docs, read %d", sf.Docs, docs)
			}
		default:
			return fmt.Errorf("snapshot: unknown frame kind %q", sf.Kind)
		}
	}
	if !sawMeta || !sawEnd {
		return fmt.Errorf("snapshot: incomplete (meta=%v end=%v)", sawMeta, sawEnd)
	}
	return nil
}
