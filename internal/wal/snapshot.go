package wal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"quaestor/internal/document"
)

// SnapshotName is the current snapshot's file name inside the data dir.
// Snapshots are written to a temp file, fsynced and atomically renamed
// over this name, so a crash mid-snapshot leaves the previous one intact.
const SnapshotName = "snapshot.db"

// TableMeta records one table's identity and secondary-index paths in a
// snapshot's meta frame.
type TableMeta struct {
	Name    string   `json:"name"`
	Indexes []string `json:"indexes,omitempty"`
}

// SnapshotMeta is a snapshot's header.
type SnapshotMeta struct {
	// Seq is the store sequence captured before the shard scan began; log
	// records with Seq > Seq must be replayed over the snapshot.
	Seq       uint64      `json:"seq"`
	Tables    []TableMeta `json:"tables"`
	CreatedAt time.Time   `json:"createdAt"`
}

// snapFrame is the on-disk shape of every snapshot frame.
type snapFrame struct {
	Kind  Kind               `json:"kind"`
	Meta  *SnapshotMeta      `json:"meta,omitempty"`
	Table string             `json:"table,omitempty"`
	Doc   *document.Document `json:"doc,omitempty"`
	Docs  int                `json:"docs,omitempty"` // end frame: expected doc count
}

// SnapshotWriter streams a point-in-time snapshot to disk.
type SnapshotWriter struct {
	dataDir string
	tmp     string
	f       *os.File
	bw      *bufio.Writer
	buf     []byte
	docs    int
	bytes   int64
}

// NewSnapshotWriter starts a snapshot in dataDir. Call Meta once, then
// Doc per document, then Commit; Abort discards a partial snapshot.
func NewSnapshotWriter(dataDir string) (*SnapshotWriter, error) {
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		return nil, err
	}
	tmp := filepath.Join(dataDir, SnapshotName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: creating snapshot temp: %w", err)
	}
	return &SnapshotWriter{dataDir: dataDir, tmp: tmp, f: f, bw: bufio.NewWriterSize(f, 1<<16)}, nil
}

func (w *SnapshotWriter) writeFrame(fr *snapFrame) error {
	payload, err := json.Marshal(fr)
	if err != nil {
		return fmt.Errorf("wal: encoding snapshot frame: %w", err)
	}
	w.buf = appendPayloadFrame(w.buf[:0], payload)
	n, err := w.bw.Write(w.buf)
	w.bytes += int64(n)
	return err
}

// Meta writes the snapshot header.
func (w *SnapshotWriter) Meta(m SnapshotMeta) error {
	return w.writeFrame(&snapFrame{Kind: kindSnapMeta, Meta: &m})
}

// Doc writes one document of a table.
func (w *SnapshotWriter) Doc(table string, doc *document.Document) error {
	w.docs++
	return w.writeFrame(&snapFrame{Kind: kindSnapDoc, Table: table, Doc: doc})
}

// Docs returns the number of documents written so far.
func (w *SnapshotWriter) Docs() int { return w.docs }

// Bytes returns the bytes written so far.
func (w *SnapshotWriter) Bytes() int64 { return w.bytes }

// Commit seals the snapshot (end frame + fsync) and atomically renames
// it into place.
func (w *SnapshotWriter) Commit() error {
	if err := w.writeFrame(&snapFrame{Kind: kindSnapEnd, Docs: w.docs}); err != nil {
		w.Abort()
		return err
	}
	if err := w.bw.Flush(); err != nil {
		w.Abort()
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.Abort()
		return err
	}
	if err := w.f.Close(); err != nil {
		os.Remove(w.tmp)
		return err
	}
	if err := os.Rename(w.tmp, filepath.Join(w.dataDir, SnapshotName)); err != nil {
		os.Remove(w.tmp)
		return err
	}
	return syncDir(w.dataDir)
}

// Abort discards the partial snapshot.
func (w *SnapshotWriter) Abort() {
	w.f.Close()
	os.Remove(w.tmp)
}

// LoadSnapshot streams dataDir's current snapshot: onMeta fires first
// with the header, then onDoc per document. It returns false when no
// snapshot exists. An incomplete or corrupt snapshot is an error — the
// atomic rename in Commit means one should never occur.
func LoadSnapshot(dataDir string, onMeta func(SnapshotMeta) error, onDoc func(table string, doc *document.Document) error) (bool, error) {
	path := filepath.Join(dataDir, SnapshotName)
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	defer f.Close()
	fr := &frameReader{r: bufio.NewReaderSize(f, 1<<16)}
	docs, sawMeta, sawEnd := 0, false, false
	for {
		payload, err := fr.nextPayload()
		if err != nil {
			if err == io.EOF {
				break
			}
			return true, fmt.Errorf("wal: reading snapshot %s: %w", path, err)
		}
		var sf snapFrame
		if err := json.Unmarshal(payload, &sf); err != nil {
			return true, fmt.Errorf("wal: reading snapshot %s: %w", path, err)
		}
		switch sf.Kind {
		case kindSnapMeta:
			sawMeta = true
			if err := onMeta(*sf.Meta); err != nil {
				return true, err
			}
		case kindSnapDoc:
			if !sawMeta {
				return true, fmt.Errorf("wal: snapshot %s: doc before meta", path)
			}
			docs++
			if err := onDoc(sf.Table, sf.Doc); err != nil {
				return true, err
			}
		case kindSnapEnd:
			sawEnd = true
			if sf.Docs != docs {
				return true, fmt.Errorf("wal: snapshot %s: end frame expects %d docs, read %d", path, sf.Docs, docs)
			}
		default:
			return true, fmt.Errorf("wal: snapshot %s: unknown frame kind %q", path, sf.Kind)
		}
	}
	if !sawMeta || !sawEnd {
		return true, fmt.Errorf("wal: snapshot %s: incomplete (meta=%v end=%v)", path, sawMeta, sawEnd)
	}
	return true, nil
}
