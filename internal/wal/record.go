// Package wal implements Quaestor's durability subsystem: a segmented,
// CRC32-framed write-ahead log with group commit, point-in-time snapshots
// and crash recovery.
//
// The store logs every write's after-image before publishing it on the
// change stream; a single committer goroutine batches concurrent appends
// into one write (and, depending on the fsync policy, one fsync), turning
// per-write durability overhead into amortized sequential appends. On
// restart the store loads the latest snapshot and replays the log tail,
// tolerating a torn final record.
//
// On-disk record format (all integers little-endian):
//
//	frame   := length:uint32 | crc:uint32 | payload:length bytes
//	crc     := CRC-32C (Castagnoli) over payload
//	payload := JSON-encoded record (see Record)
//
// Log segments are named wal-NNNNNNNN.seg and live under <dir>; the
// current snapshot is a single atomically-renamed file <dataDir>/snapshot.db
// using the same framing (a meta frame, one frame per document, and an end
// frame whose doc count guards against truncation).
package wal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"strconv"

	"quaestor/internal/document"
)

// Kind identifies what a log record describes.
type Kind string

// Record kinds. Put covers insert, upsert and partial update uniformly:
// the record carries the full after-image, so replay is idempotent.
const (
	KindPut         Kind = "put"
	KindDelete      Kind = "delete"
	KindCreateTable Kind = "table"
	KindCreateIndex Kind = "index"

	// Snapshot-only frame kinds.
	kindSnapMeta Kind = "meta"
	kindSnapDoc  Kind = "doc"
	kindSnapEnd  Kind = "end"
)

// Record is one durable log entry.
type Record struct {
	// Seq is the store's global write sequence number. DDL records
	// (table/index creation) carry Seq 0 and are replayed unconditionally;
	// they are idempotent.
	Seq  uint64 `json:"seq,omitempty"`
	Kind Kind   `json:"kind"`
	// Table is the target table.
	Table string `json:"table,omitempty"`
	// Doc is the after-image for KindPut (wire format includes _id and
	// _version).
	Doc *document.Document `json:"doc,omitempty"`
	// ID and Version identify the tombstone for KindDelete.
	ID      string `json:"id,omitempty"`
	Version int64  `json:"version,omitempty"`
	// Path is the indexed field path for KindCreateIndex.
	Path string `json:"path,omitempty"`
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const frameHeaderSize = 8

// maxFrameSize guards decoding against absurd lengths from corrupt
// headers; no single document approaches this.
const maxFrameSize = 256 << 20

// Framing errors. ErrTorn marks a frame that is incomplete or fails its
// checksum — expected at the tail of the last segment after a crash,
// corruption anywhere else.
var (
	ErrTorn   = errors.New("wal: torn or corrupt frame")
	ErrClosed = errors.New("wal: log is closed")
)

// appendPayloadFrame frames payload with its length and CRC onto buf.
func appendPayloadFrame(buf, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// appendFrame encodes rec as one CRC-framed record onto buf.
func appendFrame(buf []byte, rec *Record) ([]byte, error) {
	var payload []byte
	var err error
	if rec.Kind == KindPut && rec.Doc != nil {
		payload, err = encodePutPayload(rec)
	} else {
		payload, err = json.Marshal(rec)
	}
	if err != nil {
		return buf, fmt.Errorf("wal: encoding record: %w", err)
	}
	return appendPayloadFrame(buf, payload), nil
}

// encodePutPayload hand-builds the JSON envelope of a put record. It is
// byte-compatible with json.Marshal(rec) but marshals the document's
// field map directly instead of going through document.MarshalJSON,
// which would copy the map first — put records are the write hot path.
func encodePutPayload(rec *Record) ([]byte, error) {
	// Splicing the raw field JSON after the _id/_version header would
	// emit duplicate keys if the fields shadow them (and the decoder
	// would keep the wrong one); take the copying path for those docs.
	if _, ok := rec.Doc.Fields["_id"]; ok {
		return json.Marshal(rec)
	}
	if _, ok := rec.Doc.Fields["_version"]; ok {
		return json.Marshal(rec)
	}
	fields, err := json.Marshal(rec.Doc.Fields)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, len(fields)+len(rec.Table)+len(rec.Doc.ID)+64)
	buf = append(buf, `{"seq":`...)
	buf = strconv.AppendUint(buf, rec.Seq, 10)
	buf = append(buf, `,"kind":"put","table":`...)
	buf = appendJSONString(buf, rec.Table)
	buf = append(buf, `,"doc":{"_id":`...)
	buf = appendJSONString(buf, rec.Doc.ID)
	buf = append(buf, `,"_version":`...)
	buf = strconv.AppendInt(buf, rec.Doc.Version, 10)
	if len(fields) > 2 { // fields is at least "{}"
		buf = append(buf, ',')
		buf = append(buf, fields[1:len(fields)-1]...)
	}
	return append(buf, '}', '}'), nil
}

// appendJSONString appends s as a JSON string. Plain ASCII (the common
// case for table names and ids) takes the fast path; anything needing
// escapes goes through encoding/json.
func appendJSONString(buf []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < 0x20 || c == '"' || c == '\\' || c >= 0x80 {
			enc, _ := json.Marshal(s) // cannot fail for a string
			return append(buf, enc...)
		}
	}
	buf = append(buf, '"')
	buf = append(buf, s...)
	return append(buf, '"')
}

// frameReader decodes CRC-framed payloads from a byte stream, tracking
// the offset of the last fully-valid frame so recovery can truncate a
// torn tail precisely.
type frameReader struct {
	r        io.Reader
	validLen int64 // bytes consumed by fully-valid frames
}

// nextPayload reads one frame's payload. It returns ErrTorn for an
// incomplete or corrupt frame and io.EOF at a clean end of stream.
func (fr *frameReader) nextPayload() ([]byte, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, ErrTorn // header cut mid-write
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if n > maxFrameSize {
		return nil, ErrTorn
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		return nil, ErrTorn
	}
	if crc32.Checksum(payload, castagnoli) != sum {
		return nil, ErrTorn
	}
	fr.validLen += int64(frameHeaderSize) + int64(n)
	return payload, nil
}

// next decodes one record. It returns ErrTorn for an incomplete or
// corrupt frame and io.EOF at a clean end of stream.
func (fr *frameReader) next(rec *Record) error {
	payload, err := fr.nextPayload()
	if err != nil {
		return err
	}
	*rec = Record{}
	if err := json.Unmarshal(payload, rec); err != nil {
		return ErrTorn
	}
	return nil
}
