package kvstore

// Persistence for the Redis stand-in, reusing the WAL's CRC framing and
// atomic-rename snapshot discipline (ROADMAP: tracked expirations must
// survive restart — Quaestor keeps its cache-expiration bookkeeping in
// this store, and losing it on restart would blind the EBF to every
// entry still cached downstream).
//
// Format: a single snapshot file <dir>/kvstore.db of CRC-framed JSON
// payloads — one meta frame, one frame per live entry (with its absolute
// expiration time, so remaining TTLs survive), and an end frame whose
// entry count guards against truncation. Save writes to a temp file,
// fsyncs and atomically renames, so a crash mid-save leaves the previous
// snapshot intact.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"quaestor/internal/wal"
)

// SnapshotName is the persistent store's snapshot file inside its dir.
const SnapshotName = "kvstore.db"

// persistFrame is the on-disk shape of every frame.
type persistFrame struct {
	Kind string `json:"kind"` // "meta", "entry" or "end"
	// Meta fields.
	SavedAt int64 `json:"savedAt,omitempty"` // Unix nanoseconds
	// Entry fields.
	Key     string             `json:"key,omitempty"`
	Type    string             `json:"type,omitempty"`
	Str     string             `json:"str,omitempty"`
	Counter int64              `json:"counter,omitempty"`
	Hash    map[string]string  `json:"hash,omitempty"`
	List    []string           `json:"list,omitempty"`
	ZSet    map[string]float64 `json:"zset,omitempty"`
	// ExpiresAt is the absolute expiration in Unix nanoseconds (0 =
	// persistent key): what makes tracked expirations survive restart.
	ExpiresAt int64 `json:"expiresAt,omitempty"`
	// End fields.
	Entries int `json:"entries,omitempty"`
}

var kindNames = map[valueKind]string{
	kindString:  "string",
	kindCounter: "counter",
	kindHash:    "hash",
	kindList:    "list",
	kindZSet:    "zset",
}

var kindsByName = func() map[string]valueKind {
	m := make(map[string]valueKind, len(kindNames))
	for k, n := range kindNames {
		m[n] = k
	}
	return m
}()

// OpenPersistent opens (or creates) a store backed by dir: the previous
// snapshot is loaded — entries whose expiration already passed are
// dropped on first access, exactly as if the store had never restarted —
// and Close writes the state back. Call Save for explicit checkpoints.
func OpenPersistent(dir string) (*Store, error) {
	return OpenPersistentWithClock(dir, time.Now)
}

// OpenPersistentWithClock is OpenPersistent with an injected clock (for
// simulation and TTL round-trip tests).
func OpenPersistentWithClock(dir string, clock func() time.Time) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := NewWithClock(clock)
	s.dir = dir
	if err := s.load(); err != nil {
		return nil, err
	}
	return s, nil
}

// load reads the snapshot file, tolerating a missing one (fresh store).
func (s *Store) load() error {
	path := filepath.Join(s.dir, SnapshotName)
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	fr := wal.NewFrameReader(bufio.NewReaderSize(f, 1<<16))
	entries, sawMeta, sawEnd := 0, false, false
	for !sawEnd {
		payload, err := fr.Next()
		if err != nil {
			if err == io.EOF {
				break
			}
			return fmt.Errorf("kvstore: reading %s: %w", path, err)
		}
		var pf persistFrame
		if err := json.Unmarshal(payload, &pf); err != nil {
			return fmt.Errorf("kvstore: reading %s: %w", path, err)
		}
		switch pf.Kind {
		case "meta":
			sawMeta = true
		case "entry":
			entries++
			kind, ok := kindsByName[pf.Type]
			if !ok {
				return fmt.Errorf("kvstore: %s: unknown entry type %q", path, pf.Type)
			}
			e := &entry{kind: kind, str: pf.Str, counter: pf.Counter, hash: pf.Hash, list: pf.List, zset: pf.ZSet}
			// An entry emptied before the save round-trips as a nil map
			// (omitempty): rebuild the structure invariant or the next
			// HSet/ZAdd would write to a nil map and panic.
			if kind == kindHash && e.hash == nil {
				e.hash = map[string]string{}
			}
			if kind == kindZSet && e.zset == nil {
				e.zset = map[string]float64{}
			}
			if pf.ExpiresAt != 0 {
				e.expiresAt = time.Unix(0, pf.ExpiresAt)
			}
			s.data[pf.Key] = e
		case "end":
			sawEnd = true
			if pf.Entries != entries {
				return fmt.Errorf("kvstore: %s: end frame expects %d entries, read %d", path, pf.Entries, entries)
			}
		default:
			return fmt.Errorf("kvstore: %s: unknown frame kind %q", path, pf.Kind)
		}
	}
	if !sawMeta || !sawEnd {
		return fmt.Errorf("kvstore: %s: incomplete snapshot (meta=%v end=%v)", path, sawMeta, sawEnd)
	}
	return nil
}

// Save checkpoints all live entries to the snapshot file (temp file,
// fsync, atomic rename). ErrClosed after Close; a no-op error on stores
// opened without a directory.
func (s *Store) Save() error {
	if s.dir == "" {
		return fmt.Errorf("kvstore: store is not persistent (use OpenPersistent)")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.saveLocked()
}

func (s *Store) saveLocked() error {
	tmp := filepath.Join(s.dir, SnapshotName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	abort := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	var buf []byte
	writeFrame := func(pf *persistFrame) error {
		payload, err := json.Marshal(pf)
		if err != nil {
			return err
		}
		buf = wal.AppendFrame(buf[:0], payload)
		_, err = bw.Write(buf)
		return err
	}
	if err := writeFrame(&persistFrame{Kind: "meta", SavedAt: s.clock().UnixNano()}); err != nil {
		return abort(err)
	}
	entries := 0
	for key := range s.data {
		e := s.live(key) // sweeps expired keys instead of persisting them
		if e == nil {
			continue
		}
		entries++
		pf := &persistFrame{
			Kind: "entry", Key: key, Type: kindNames[e.kind],
			Str: e.str, Counter: e.counter, Hash: e.hash, List: e.list, ZSet: e.zset,
		}
		if !e.expiresAt.IsZero() {
			pf.ExpiresAt = e.expiresAt.UnixNano()
		}
		if err := writeFrame(pf); err != nil {
			return abort(err)
		}
	}
	if err := writeFrame(&persistFrame{Kind: "end", Entries: entries}); err != nil {
		return abort(err)
	}
	if err := bw.Flush(); err != nil {
		return abort(err)
	}
	if err := f.Sync(); err != nil {
		return abort(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, SnapshotName)); err != nil {
		os.Remove(tmp)
		return err
	}
	d, err := os.Open(s.dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
