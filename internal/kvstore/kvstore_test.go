package kvstore

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestSetGetDel(t *testing.T) {
	s := New()
	defer s.Close()
	s.Set("k", "v", 0)
	if v, ok := s.Get("k"); !ok || v != "v" {
		t.Errorf("Get = %q, %v", v, ok)
	}
	if n := s.Del("k", "missing"); n != 1 {
		t.Errorf("Del = %d", n)
	}
	if _, ok := s.Get("k"); ok {
		t.Error("deleted key still present")
	}
}

func TestTTLExpiry(t *testing.T) {
	now := time.Unix(0, 0)
	s := NewWithClock(func() time.Time { return now })
	defer s.Close()
	s.Set("k", "v", time.Second)
	if !s.Exists("k") {
		t.Fatal("key should exist before expiry")
	}
	now = now.Add(2 * time.Second)
	if s.Exists("k") {
		t.Error("key should have expired")
	}
	if _, ok := s.Get("k"); ok {
		t.Error("expired key readable")
	}
}

func TestExpireExisting(t *testing.T) {
	now := time.Unix(0, 0)
	s := NewWithClock(func() time.Time { return now })
	defer s.Close()
	s.Set("k", "v", 0)
	if !s.Expire("k", time.Second) {
		t.Fatal("Expire on live key should succeed")
	}
	now = now.Add(1500 * time.Millisecond)
	if s.Exists("k") {
		t.Error("key should expire after Expire TTL")
	}
	if s.Expire("missing", time.Second) {
		t.Error("Expire on missing key should fail")
	}
}

func TestCounters(t *testing.T) {
	s := New()
	defer s.Close()
	if v, err := s.IncrBy("c", 5); err != nil || v != 5 {
		t.Errorf("IncrBy = %d, %v", v, err)
	}
	if v, err := s.IncrBy("c", -2); err != nil || v != 3 {
		t.Errorf("IncrBy = %d, %v", v, err)
	}
	if v, err := s.GetCounter("c"); err != nil || v != 3 {
		t.Errorf("GetCounter = %d, %v", v, err)
	}
	if v, err := s.GetCounter("missing"); err != nil || v != 0 {
		t.Errorf("missing counter = %d, %v", v, err)
	}
}

func TestWrongTypeErrors(t *testing.T) {
	s := New()
	defer s.Close()
	s.Set("str", "v", 0)
	if _, err := s.IncrBy("str", 1); !errors.Is(err, ErrWrongType) {
		t.Errorf("IncrBy on string: %v", err)
	}
	if _, err := s.HSet("str", "f", "v"); !errors.Is(err, ErrWrongType) {
		t.Errorf("HSet on string: %v", err)
	}
	if _, err := s.LPush("str", "v"); !errors.Is(err, ErrWrongType) {
		t.Errorf("LPush on string: %v", err)
	}
	if err := s.ZAdd("str", "m", 1); !errors.Is(err, ErrWrongType) {
		t.Errorf("ZAdd on string: %v", err)
	}
}

func TestHashOperations(t *testing.T) {
	s := New()
	defer s.Close()
	if fresh, _ := s.HSet("h", "a", "1"); !fresh {
		t.Error("first HSet should be fresh")
	}
	if fresh, _ := s.HSet("h", "a", "2"); fresh {
		t.Error("overwrite should not be fresh")
	}
	if v, ok, _ := s.HGet("h", "a"); !ok || v != "2" {
		t.Errorf("HGet = %q %v", v, ok)
	}
	if _, ok, _ := s.HGet("h", "missing"); ok {
		t.Error("missing field present")
	}
	s.HSet("h", "b", "3")
	all, _ := s.HGetAll("h")
	if len(all) != 2 || all["b"] != "3" {
		t.Errorf("HGetAll = %v", all)
	}
	if n, _ := s.HLen("h"); n != 2 {
		t.Errorf("HLen = %d", n)
	}
	if n, _ := s.HDel("h", "a", "missing"); n != 1 {
		t.Errorf("HDel = %d", n)
	}
}

func TestListQueue(t *testing.T) {
	s := New()
	defer s.Close()
	if n, _ := s.LPush("q", "a", "b"); n != 2 {
		t.Errorf("LPush = %d", n)
	}
	// LPush prepends, RPop takes the tail -> FIFO.
	if v, ok, _ := s.RPop("q"); !ok || v != "a" {
		t.Errorf("RPop = %q", v)
	}
	if v, ok, _ := s.RPop("q"); !ok || v != "b" {
		t.Errorf("RPop = %q", v)
	}
	if _, ok, _ := s.RPop("q"); ok {
		t.Error("empty queue popped")
	}
	if n, _ := s.LLen("q"); n != 0 {
		t.Errorf("LLen = %d", n)
	}
}

func TestBRPopBlocksUntilPush(t *testing.T) {
	s := New()
	defer s.Close()
	got := make(chan string, 1)
	go func() {
		v, ok, err := s.BRPop("q", 5*time.Second)
		if err != nil || !ok {
			got <- fmt.Sprintf("err=%v ok=%v", err, ok)
			return
		}
		got <- v
	}()
	time.Sleep(20 * time.Millisecond)
	if _, err := s.LPush("q", "hello"); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-got:
		if v != "hello" {
			t.Errorf("BRPop = %q", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("BRPop never woke up")
	}
}

func TestBRPopTimeout(t *testing.T) {
	s := New()
	defer s.Close()
	start := time.Now()
	_, ok, err := s.BRPop("empty", 50*time.Millisecond)
	if err != nil || ok {
		t.Errorf("timeout pop: ok=%v err=%v", ok, err)
	}
	if time.Since(start) < 40*time.Millisecond {
		t.Error("BRPop returned before timeout")
	}
}

func TestBRPopImmediateWhenAvailable(t *testing.T) {
	s := New()
	defer s.Close()
	s.LPush("q", "x")
	v, ok, err := s.BRPop("q", time.Second)
	if err != nil || !ok || v != "x" {
		t.Errorf("BRPop = %q %v %v", v, ok, err)
	}
}

func TestSortedSet(t *testing.T) {
	s := New()
	defer s.Close()
	s.ZAdd("z", "c", 3)
	s.ZAdd("z", "a", 1)
	s.ZAdd("z", "b", 2)
	got, err := s.ZRangeByScore("z", 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("ZRangeByScore = %v", got)
	}
	// Updating a member's score moves it.
	s.ZAdd("z", "a", 10)
	got, _ = s.ZRangeByScore("z", 1, 5)
	if len(got) != 2 || got[0] != "b" {
		t.Errorf("after update = %v", got)
	}
	if n, _ := s.ZRem("z", "a", "missing"); n != 1 {
		t.Errorf("ZRem = %d", n)
	}
}

func TestPubSub(t *testing.T) {
	s := New()
	defer s.Close()
	ch1, cancel1 := s.Subscribe("topic")
	ch2, cancel2 := s.Subscribe("topic")
	defer cancel2()
	if n := s.Publish("topic", "m1"); n != 2 {
		t.Errorf("Publish delivered to %d", n)
	}
	if v := <-ch1; v != "m1" {
		t.Errorf("sub1 got %q", v)
	}
	if v := <-ch2; v != "m1" {
		t.Errorf("sub2 got %q", v)
	}
	cancel1()
	if n := s.Publish("topic", "m2"); n != 1 {
		t.Errorf("after cancel: delivered to %d", n)
	}
	if _, ok := <-ch1; ok {
		t.Error("cancelled channel should be closed")
	}
	if n := s.Publish("empty-topic", "x"); n != 0 {
		t.Errorf("publish to no subscribers = %d", n)
	}
}

func TestCloseUnblocksAndCloses(t *testing.T) {
	s := New()
	ch, _ := s.Subscribe("t")
	done := make(chan error, 1)
	go func() {
		_, _, err := s.BRPop("q", 0)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	s.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("BRPop after close: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not unblock BRPop")
	}
	if _, ok := <-ch; ok {
		t.Error("subscription should close on store close")
	}
	s.Close() // idempotent
}

func TestKeysCountsLive(t *testing.T) {
	now := time.Unix(0, 0)
	s := NewWithClock(func() time.Time { return now })
	defer s.Close()
	s.Set("a", "1", 0)
	s.Set("b", "2", time.Second)
	if s.Keys() != 2 {
		t.Errorf("Keys = %d", s.Keys())
	}
	now = now.Add(2 * time.Second)
	if s.Keys() != 1 {
		t.Errorf("Keys after expiry = %d", s.Keys())
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New()
	defer s.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.IncrBy("counter", 1)
				s.HSet("hash", fmt.Sprintf("w%d", id), fmt.Sprintf("%d", i))
				s.LPush(fmt.Sprintf("list%d", id), "x")
				s.RPop(fmt.Sprintf("list%d", id))
			}
		}(w)
	}
	wg.Wait()
	if v, _ := s.GetCounter("counter"); v != 1600 {
		t.Errorf("counter = %d, want 1600", v)
	}
}
