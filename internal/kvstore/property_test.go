package kvstore

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

// TestQueueFIFOProperty: for any sequence of pushed values, LPush+RPop
// behaves as a FIFO queue.
func TestQueueFIFOProperty(t *testing.T) {
	prop := func(values []string) bool {
		s := New()
		defer s.Close()
		for _, v := range values {
			if _, err := s.LPush("q", v); err != nil {
				return false
			}
		}
		for _, want := range values {
			got, ok, err := s.RPop("q")
			if err != nil || !ok || got != want {
				return false
			}
		}
		_, ok, _ := s.RPop("q")
		return !ok // drained
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestHashModelProperty: HSet/HGet/HDel agree with a plain map.
func TestHashModelProperty(t *testing.T) {
	type op struct {
		Set   bool
		Field uint8
		Value string
	}
	prop := func(ops []op) bool {
		s := New()
		defer s.Close()
		model := map[string]string{}
		for _, o := range ops {
			field := fmt.Sprintf("f%d", o.Field%16)
			if o.Set {
				if _, err := s.HSet("h", field, o.Value); err != nil {
					return false
				}
				model[field] = o.Value
			} else {
				if _, err := s.HDel("h", field); err != nil {
					return false
				}
				delete(model, field)
			}
		}
		all, err := s.HGetAll("h")
		if err != nil || len(all) != len(model) {
			return false
		}
		for k, v := range model {
			if all[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestZSetOrderedProperty: ZRangeByScore returns members sorted by score
// (ties by member) and respects bounds.
func TestZSetOrderedProperty(t *testing.T) {
	prop := func(scores []float64) bool {
		s := New()
		defer s.Close()
		for i, sc := range scores {
			if err := s.ZAdd("z", fmt.Sprintf("m%03d", i), sc); err != nil {
				return false
			}
		}
		got, err := s.ZRangeByScore("z", math.Inf(-1), math.Inf(1))
		if err != nil || len(got) != len(scores) {
			return false
		}
		prev := math.Inf(-1)
		for _, m := range got {
			var idx int
			if _, err := fmt.Sscanf(m, "m%03d", &idx); err != nil {
				return false
			}
			if scores[idx] < prev {
				return false
			}
			prev = scores[idx]
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
