// Package kvstore implements an in-memory key-value store with the Redis
// primitives Quaestor depends on (Section 3.3 "Implementation": "all DBaaS
// servers communicate with the in-memory key-value store Redis, which holds
// the counting Bloom Filter and the tracked expirations", plus the message
// queues connecting Quaestor and InvaliDB).
//
// Supported structures: strings with TTL, 64-bit counters, hashes, lists
// usable as blocking queues, sorted sets (for expiration tracking), and
// publish/subscribe channels. All operations are safe for concurrent use.
package kvstore

import (
	"errors"
	"sort"
	"sync"
	"time"
)

// ErrWrongType is returned when a key holds a value of another structure.
var ErrWrongType = errors.New("kvstore: operation against a key holding the wrong kind of value")

// ErrClosed is returned after Close.
var ErrClosed = errors.New("kvstore: store is closed")

type valueKind int

const (
	kindString valueKind = iota
	kindCounter
	kindHash
	kindList
	kindZSet
)

type entry struct {
	kind    valueKind
	str     string
	counter int64
	hash    map[string]string
	list    []string
	zset    map[string]float64
	// expiresAt is zero for persistent keys.
	expiresAt time.Time
}

// Store is an in-memory Redis-like store, optionally backed by a
// snapshot file (see OpenPersistent in persist.go).
type Store struct {
	mu      sync.Mutex
	data    map[string]*entry
	waiters map[string][]chan struct{} // blocked BRPop waiters per list key
	subs    map[string]map[int]chan string
	nextID  int
	closed  bool
	clock   func() time.Time
	// dir is the persistence directory; empty for purely in-memory
	// stores.
	dir string
}

// New creates an empty store.
func New() *Store {
	return &Store{
		data:    map[string]*entry{},
		waiters: map[string][]chan struct{}{},
		subs:    map[string]map[int]chan string{},
		clock:   time.Now,
	}
}

// NewWithClock creates a store using the supplied clock (for simulation).
func NewWithClock(clock func() time.Time) *Store {
	s := New()
	s.clock = clock
	return s
}

// Close shuts down the store and closes all subscriptions. Persistent
// stores checkpoint their state first (best effort; use Save for an
// error-checked checkpoint).
func (s *Store) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	if s.dir != "" {
		_ = s.saveLocked()
	}
	s.closed = true
	for _, chans := range s.subs {
		for _, ch := range chans {
			close(ch)
		}
	}
	s.subs = map[string]map[int]chan string{}
	for _, ws := range s.waiters {
		for _, w := range ws {
			close(w)
		}
	}
	s.waiters = map[string][]chan struct{}{}
}

// live returns the entry if present and unexpired, evicting lazily.
func (s *Store) live(key string) *entry {
	e, ok := s.data[key]
	if !ok {
		return nil
	}
	if !e.expiresAt.IsZero() && !s.clock().Before(e.expiresAt) {
		delete(s.data, key)
		return nil
	}
	return e
}

// Set stores a string value. ttl == 0 means no expiration.
func (s *Store) Set(key, value string, ttl time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := &entry{kind: kindString, str: value}
	if ttl > 0 {
		e.expiresAt = s.clock().Add(ttl)
	}
	s.data[key] = e
}

// Get returns the string value and whether it exists.
func (s *Store) Get(key string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.live(key)
	if e == nil || e.kind != kindString {
		return "", false
	}
	return e.str, true
}

// Del removes keys, returning how many existed.
func (s *Store) Del(keys ...string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, k := range keys {
		if s.live(k) != nil {
			delete(s.data, k)
			n++
		}
	}
	return n
}

// Exists reports whether the key is present and unexpired.
func (s *Store) Exists(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.live(key) != nil
}

// Expire sets a TTL on an existing key.
func (s *Store) Expire(key string, ttl time.Duration) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.live(key)
	if e == nil {
		return false
	}
	e.expiresAt = s.clock().Add(ttl)
	return true
}

// IncrBy adjusts a counter by delta, creating it at 0 first.
func (s *Store) IncrBy(key string, delta int64) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.live(key)
	if e == nil {
		e = &entry{kind: kindCounter}
		s.data[key] = e
	}
	if e.kind != kindCounter {
		return 0, ErrWrongType
	}
	e.counter += delta
	return e.counter, nil
}

// GetCounter reads a counter (0 when missing).
func (s *Store) GetCounter(key string) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.live(key)
	if e == nil {
		return 0, nil
	}
	if e.kind != kindCounter {
		return 0, ErrWrongType
	}
	return e.counter, nil
}

// HSet assigns a hash field, returning true when the field was new.
func (s *Store) HSet(key, field, value string) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.live(key)
	if e == nil {
		e = &entry{kind: kindHash, hash: map[string]string{}}
		s.data[key] = e
	}
	if e.kind != kindHash {
		return false, ErrWrongType
	}
	_, existed := e.hash[field]
	e.hash[field] = value
	return !existed, nil
}

// HGet reads a hash field.
func (s *Store) HGet(key, field string) (string, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.live(key)
	if e == nil {
		return "", false, nil
	}
	if e.kind != kindHash {
		return "", false, ErrWrongType
	}
	v, ok := e.hash[field]
	return v, ok, nil
}

// HDel removes hash fields, returning how many existed.
func (s *Store) HDel(key string, fields ...string) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.live(key)
	if e == nil {
		return 0, nil
	}
	if e.kind != kindHash {
		return 0, ErrWrongType
	}
	n := 0
	for _, f := range fields {
		if _, ok := e.hash[f]; ok {
			delete(e.hash, f)
			n++
		}
	}
	return n, nil
}

// HGetAll returns a copy of all hash fields.
func (s *Store) HGetAll(key string) (map[string]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.live(key)
	if e == nil {
		return map[string]string{}, nil
	}
	if e.kind != kindHash {
		return nil, ErrWrongType
	}
	out := make(map[string]string, len(e.hash))
	for k, v := range e.hash {
		out[k] = v
	}
	return out, nil
}

// HLen returns the number of hash fields.
func (s *Store) HLen(key string) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.live(key)
	if e == nil {
		return 0, nil
	}
	if e.kind != kindHash {
		return 0, ErrWrongType
	}
	return len(e.hash), nil
}

// LPush prepends values to a list, waking one blocked BRPop waiter.
func (s *Store) LPush(key string, values ...string) (int, error) {
	s.mu.Lock()
	e := s.live(key)
	if e == nil {
		e = &entry{kind: kindList}
		s.data[key] = e
	}
	if e.kind != kindList {
		s.mu.Unlock()
		return 0, ErrWrongType
	}
	for _, v := range values {
		e.list = append([]string{v}, e.list...)
	}
	n := len(e.list)
	var wake chan struct{}
	if ws := s.waiters[key]; len(ws) > 0 {
		wake = ws[0]
		s.waiters[key] = ws[1:]
	}
	s.mu.Unlock()
	if wake != nil {
		close(wake)
	}
	return n, nil
}

// RPop removes and returns the list tail.
func (s *Store) RPop(key string) (string, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rpopLocked(key)
}

func (s *Store) rpopLocked(key string) (string, bool, error) {
	e := s.live(key)
	if e == nil {
		return "", false, nil
	}
	if e.kind != kindList {
		return "", false, ErrWrongType
	}
	if len(e.list) == 0 {
		return "", false, nil
	}
	v := e.list[len(e.list)-1]
	e.list = e.list[:len(e.list)-1]
	return v, true, nil
}

// BRPop blocks until an element is available at the list tail or the
// timeout elapses (timeout <= 0 waits forever). This is the queue primitive
// connecting Quaestor and InvaliDB.
func (s *Store) BRPop(key string, timeout time.Duration) (string, bool, error) {
	deadline := time.Time{}
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	for {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return "", false, ErrClosed
		}
		v, ok, err := s.rpopLocked(key)
		if err != nil || ok {
			s.mu.Unlock()
			return v, ok, err
		}
		w := make(chan struct{})
		s.waiters[key] = append(s.waiters[key], w)
		s.mu.Unlock()

		if deadline.IsZero() {
			<-w
			continue
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			s.dropWaiter(key, w)
			return "", false, nil
		}
		t := time.NewTimer(remaining)
		select {
		case <-w:
			t.Stop()
		case <-t.C:
			s.dropWaiter(key, w)
			return "", false, nil
		}
	}
}

func (s *Store) dropWaiter(key string, w chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ws := s.waiters[key]
	for i, cand := range ws {
		if cand == w {
			s.waiters[key] = append(ws[:i:i], ws[i+1:]...)
			return
		}
	}
}

// LLen returns the list length.
func (s *Store) LLen(key string) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.live(key)
	if e == nil {
		return 0, nil
	}
	if e.kind != kindList {
		return 0, ErrWrongType
	}
	return len(e.list), nil
}

// ZAdd inserts or updates a sorted-set member with the given score.
func (s *Store) ZAdd(key, member string, score float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.live(key)
	if e == nil {
		e = &entry{kind: kindZSet, zset: map[string]float64{}}
		s.data[key] = e
	}
	if e.kind != kindZSet {
		return ErrWrongType
	}
	e.zset[member] = score
	return nil
}

// ZRangeByScore returns members with min <= score <= max, ascending.
func (s *Store) ZRangeByScore(key string, min, max float64) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.live(key)
	if e == nil {
		return nil, nil
	}
	if e.kind != kindZSet {
		return nil, ErrWrongType
	}
	pairs := make([]zpair, 0, len(e.zset))
	for m, sc := range e.zset {
		if sc >= min && sc <= max {
			pairs = append(pairs, zpair{m, sc})
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].score != pairs[j].score {
			return pairs[i].score < pairs[j].score
		}
		return pairs[i].member < pairs[j].member
	})
	out := make([]string, len(pairs))
	for i, p := range pairs {
		out[i] = p.member
	}
	return out, nil
}

type zpair struct {
	member string
	score  float64
}

// ZRem removes sorted-set members, returning how many existed.
func (s *Store) ZRem(key string, members ...string) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.live(key)
	if e == nil {
		return 0, nil
	}
	if e.kind != kindZSet {
		return 0, ErrWrongType
	}
	n := 0
	for _, m := range members {
		if _, ok := e.zset[m]; ok {
			delete(e.zset, m)
			n++
		}
	}
	return n, nil
}

// Publish sends a message to all subscribers of a channel and returns the
// number of receivers. Delivery is best-effort for full buffers, mirroring
// Redis pub/sub semantics.
func (s *Store) Publish(channel, message string) int {
	s.mu.Lock()
	chans := make([]chan string, 0, len(s.subs[channel]))
	for _, ch := range s.subs[channel] {
		chans = append(chans, ch)
	}
	s.mu.Unlock()
	delivered := 0
	for _, ch := range chans {
		select {
		case ch <- message:
			delivered++
		default: // drop for slow consumers, like Redis
		}
	}
	return delivered
}

// Subscribe registers a pub/sub consumer on a channel.
func (s *Store) Subscribe(channel string) (<-chan string, func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch := make(chan string, 1024)
	if s.closed {
		close(ch)
		return ch, func() {}
	}
	if s.subs[channel] == nil {
		s.subs[channel] = map[int]chan string{}
	}
	id := s.nextID
	s.nextID++
	s.subs[channel][id] = ch
	cancel := func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if m, ok := s.subs[channel]; ok {
			if c, ok := m[id]; ok {
				delete(m, id)
				close(c)
			}
		}
	}
	return ch, cancel
}

// Keys returns the number of live keys (expired keys are swept).
func (s *Store) Keys() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for k := range s.data {
		if s.live(k) != nil {
			n++
		}
	}
	return n
}
