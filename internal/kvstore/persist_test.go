package kvstore

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestPersistRestartRoundTrip is the restart round-trip: every structure
// — strings with TTLs, counters, hashes, lists, sorted sets (the
// expiration-tracking structure) — survives Close + OpenPersistent, and
// tracked expirations keep their absolute deadlines: a key with 10
// minutes left before restart still expires 10 minutes after the
// original Set, not 10 minutes after the restart.
func TestPersistRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(1_700_000_000, 0)
	clock := func() time.Time { return now }

	s, err := OpenPersistentWithClock(dir, clock)
	if err != nil {
		t.Fatal(err)
	}
	s.Set("plain", "v1", 0)
	s.Set("short", "gone-soon", 5*time.Minute)
	s.Set("long", "still-here", time.Hour)
	if _, err := s.IncrBy("hits", 42); err != nil {
		t.Fatal(err)
	}
	if _, err := s.HSet("h", "f1", "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.HSet("h", "f2", "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LPush("queue", "x", "y", "z"); err != nil {
		t.Fatal(err)
	}
	// The expiration-tracking zset: member → expiration unix seconds.
	if err := s.ZAdd("expirations", "posts/1", 100); err != nil {
		t.Fatal(err)
	}
	if err := s.ZAdd("expirations", "posts/2", 200); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Restart 10 minutes later: "short" (5m TTL) must be gone, "long"
	// must still carry its original deadline.
	now = now.Add(10 * time.Minute)
	s2, err := OpenPersistentWithClock(dir, clock)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()

	if v, ok := s2.Get("plain"); !ok || v != "v1" {
		t.Errorf("plain = %q, %v", v, ok)
	}
	if _, ok := s2.Get("short"); ok {
		t.Error("short survived past its TTL across restart")
	}
	if v, ok := s2.Get("long"); !ok || v != "still-here" {
		t.Errorf("long = %q, %v (TTL lost across restart)", v, ok)
	}
	if n, err := s2.GetCounter("hits"); err != nil || n != 42 {
		t.Errorf("hits = %d, %v", n, err)
	}
	if all, err := s2.HGetAll("h"); err != nil || len(all) != 2 || all["f1"] != "a" || all["f2"] != "b" {
		t.Errorf("hash = %v, %v", all, err)
	}
	for _, want := range []string{"x", "y", "z"} {
		got, ok, err := s2.RPop("queue")
		if err != nil || !ok || got != want {
			t.Errorf("queue pop = %q, %v, %v (want %q)", got, ok, err, want)
		}
	}
	members, err := s2.ZRangeByScore("expirations", 0, 150)
	if err != nil || len(members) != 1 || members[0] != "posts/1" {
		t.Errorf("tracked expirations = %v, %v", members, err)
	}

	// The surviving "long" key expires at its original absolute
	// deadline: 1h after the first Set, i.e. 50 minutes from now.
	now = now.Add(51 * time.Minute)
	if _, ok := s2.Get("long"); ok {
		t.Error("long did not expire at its pre-restart deadline")
	}
}

// TestPersistEmptiedStructuresUsableAfterRestart: a hash or zset whose
// members were all removed before the save must come back writable —
// the empty map round-trips as JSON null, and the reloaded entry must
// not panic on the next HSet/ZAdd.
func TestPersistEmptiedStructuresUsableAfterRestart(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenPersistent(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.HSet("h", "f", "v"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.HDel("h", "f"); err != nil {
		t.Fatal(err)
	}
	if err := s.ZAdd("z", "m", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ZRem("z", "m"); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := OpenPersistent(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := s2.HSet("h", "f2", "v2"); err != nil {
		t.Fatalf("HSet on reloaded emptied hash: %v", err)
	}
	if err := s2.ZAdd("z", "m2", 2); err != nil {
		t.Fatalf("ZAdd on reloaded emptied zset: %v", err)
	}
}

// TestPersistExplicitSaveSurvivesCrash: a Save checkpoint is what a
// crash falls back to — state mutated after the last Save is lost, the
// checkpoint itself is intact (no torn file thanks to the atomic
// rename).
func TestPersistExplicitSaveSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenPersistent(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Set("a", "1", 0)
	if err := s.Save(); err != nil {
		t.Fatal(err)
	}
	s.Set("b", "2", 0) // never checkpointed
	// Simulated crash: no Close. Reopen from disk.
	s2, err := OpenPersistent(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if v, ok := s2.Get("a"); !ok || v != "1" {
		t.Errorf("a = %q, %v", v, ok)
	}
	if _, ok := s2.Get("b"); ok {
		t.Error("b survived without a checkpoint")
	}
}

// TestPersistTruncatedSnapshotRejected: a torn snapshot (crash mid-save
// would leave the previous file, but corruption must not be read as a
// shorter valid store) fails to load rather than silently losing tracked
// expirations.
func TestPersistTruncatedSnapshotRejected(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenPersistent(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		s.Set(string(rune('a'+i%26))+"key", "v", 0)
	}
	s.Close()

	path := filepath.Join(dir, SnapshotName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenPersistent(dir); err == nil {
		t.Fatal("truncated snapshot loaded without error")
	}
}
