package replication_test

// Failover and chaos tests: killing the primary mid-load and promoting
// the replica, and surviving a storm of random stream disconnects.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"quaestor/internal/document"
	"quaestor/internal/query"
	"quaestor/internal/replication"
	"quaestor/internal/store"
)

// shadowLog drains a primary subscription into an ordered event log, so
// a test can reconstruct "the primary's state as of sequence R" after
// the primary is gone.
type shadowLog struct {
	mu     sync.Mutex
	events []store.ChangeEvent
	done   chan struct{}
}

func shadowPrimary(p *store.Store) *shadowLog {
	ch, _ := p.SubscribeNamed("shadow")
	sl := &shadowLog{done: make(chan struct{})}
	go func() {
		defer close(sl.done)
		for ev := range ch {
			sl.mu.Lock()
			sl.events = append(sl.events, ev)
			sl.mu.Unlock()
		}
	}()
	return sl
}

// stateAsOf folds the acknowledged event log up to sequence r into the
// expected table → id → document state.
func (sl *shadowLog) stateAsOf(r uint64) map[string]map[string]*document.Document {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	state := map[string]map[string]*document.Document{}
	for _, ev := range sl.events {
		if ev.Seq > r {
			break // events arrive in strict Seq order
		}
		if ev.After == nil {
			continue // sequenced DDL (e.g. create-index) carries no document
		}
		tbl := state[ev.Table]
		if tbl == nil {
			tbl = map[string]*document.Document{}
			state[ev.Table] = tbl
		}
		if ev.Op == store.OpDelete {
			delete(tbl, ev.After.ID)
		} else {
			tbl[ev.After.ID] = ev.After
		}
	}
	return state
}

// ackedMatches reports whether some acknowledged write produced exactly
// this after-image. (id, version) alone is not unique — a key deleted
// and re-inserted restarts its version counter — so the fields must
// match too.
func (sl *shadowLog) ackedMatches(table string, doc *document.Document) bool {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	for _, ev := range sl.events {
		if ev.Op != store.OpDelete && ev.Table == table && ev.After != nil && ev.After.ID == doc.ID &&
			ev.After.Version == doc.Version && document.DeepEqual(ev.After.Fields, doc.Fields) {
			return true
		}
	}
	return false
}

func (sl *shadowLog) deletedAfter(table, id string, r uint64) bool {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	for _, ev := range sl.events {
		if ev.Seq > r && ev.Table == table && ev.Op == store.OpDelete && ev.After.ID == id {
			return true
		}
	}
	return false
}

// seqWatcher asserts a subscriber of the replica's own pipeline sees a
// strictly increasing stream — across bootstrap jumps and, crucially,
// across promotion. Synthetic events are exempt: a bootstrap import
// publishes its state diff as a floor-sequenced batch (equal Seqs by
// design), which must still land between the pre-import tail and the
// first post-import event.
type seqWatcher struct {
	mu      sync.Mutex
	lastSeq uint64
	count   int
	errs    []string
}

func watchSeqs(ch <-chan store.ChangeEvent) *seqWatcher {
	w := &seqWatcher{}
	go func() {
		for ev := range ch {
			w.mu.Lock()
			if ev.Seq <= w.lastSeq && !ev.Synthetic {
				if len(w.errs) < 10 {
					w.errs = append(w.errs, fmt.Sprintf("seq %d delivered after %d", ev.Seq, w.lastSeq))
				}
			}
			if ev.Seq > w.lastSeq {
				w.lastSeq = ev.Seq
			}
			w.count++
			w.mu.Unlock()
		}
	}()
	return w
}

// TestFailoverPromote kills the primary mid-load and promotes the
// replica. Every write the replica had acknowledged as replicated
// (sequence ≤ its applied position R) must survive byte-equal — that is
// the async log-shipping guarantee — and the promoted node must accept
// new writes, continuing the sequence with no gap for its own
// subscribers.
func TestFailoverPromote(t *testing.T) {
	const writers = 48
	opsEach := 60
	if testing.Short() {
		opsEach = 20
	}
	p := startPrimary(t, t.TempDir(), 1<<14)
	if err := p.db.CreateTable("docs"); err != nil {
		t.Fatal(err)
	}
	if err := p.db.CreateIndex("docs", "v"); err != nil {
		t.Fatal(err)
	}
	shadow := shadowPrimary(p.db)

	repl := startReplica(t, p.ts.URL, t.TempDir())
	rch, rcancel := repl.Store().SubscribeNamed("downstream")
	defer rcancel()
	downstream := watchSeqs(rch)

	wait := hammer(p.db, writers, opsEach, 64)

	// Kill the primary mid-load: wait for the load to be in full swing
	// and the replica to be past bootstrap, then tear everything down
	// while writers are still writing.
	deadline := time.Now().Add(15 * time.Second)
	for p.db.LastSeq() < uint64(writers*opsEach/3) || repl.Store().LastSeq() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("load never ramped (primary %d, replica %d)", p.db.LastSeq(), repl.Store().LastSeq())
		}
		time.Sleep(time.Millisecond)
	}
	p.close()     // connections die, then the store: acked events all reach the shadow
	<-shadow.done // shadow saw the full published prefix
	wait()        // writers drain their errors

	// Let the replica settle: any batch received before the cut finishes
	// applying; after that its position is frozen.
	settle := repl.Store().LastSeq()
	for {
		time.Sleep(20 * time.Millisecond)
		if now := repl.Store().LastSeq(); now == settle {
			break
		} else {
			settle = now
		}
	}
	r := repl.Store().LastSeq()
	if r == 0 {
		t.Fatal("replica applied nothing before the failover")
	}

	repl.Promote()
	if st := repl.Status(); st.State != replication.StatePromoted || st.ReadOnly {
		t.Fatalf("post-promotion status = %+v", st)
	}

	// No acknowledged replicated write lost, nothing invented. The
	// snapshot floor's semantics allow writes newer than the floor to
	// leak into a bootstrap (the stream re-applies over them), so the
	// promoted state is the acknowledged state at R possibly advanced by
	// a few acknowledged writes in (R, P] — never behind it, and never
	// holding anything the primary didn't acknowledge:
	//
	//  1. every key live at R is present at version ≥ its version at R,
	//     or was deleted by an acknowledged write after R;
	//  2. every document the promoted node holds is byte-equal to an
	//     acknowledged after-image at that exact version.
	want := shadow.stateAsOf(r)
	db := repl.Store()
	for tbl, docs := range want {
		for id, wdoc := range docs {
			got, err := db.Get(tbl, id)
			if err != nil {
				if !shadow.deletedAfter(tbl, id, r) {
					t.Errorf("replicated write lost: %s/%s (v%d): %v", tbl, id, wdoc.Version, err)
				}
				continue
			}
			if got.Version < wdoc.Version && !shadow.deletedAfter(tbl, id, r) {
				// (A lower version with a post-R delete is a re-created
				// key from the acked suffix, not a loss.)
				t.Errorf("%s/%s: promoted node at v%d, behind acknowledged v%d at R=%d", tbl, id, got.Version, wdoc.Version, r)
			}
		}
	}
	for _, tbl := range db.Tables() {
		docs, err := db.ScanQuery(query.New(tbl, nil))
		if err != nil {
			t.Fatal(err)
		}
		for _, got := range docs {
			if !shadow.ackedMatches(tbl, got) {
				t.Errorf("%s/%s v%d %v on promoted node was never acknowledged by the primary", tbl, got.ID, got.Version, got.Fields)
			}
		}
	}

	// New writes succeed and extend the sequence without a gap.
	if err := db.Insert("docs", document.New("post-promotion", map[string]any{"v": int64(99)})); err != nil {
		t.Fatalf("write after promotion: %v", err)
	}
	if got := db.LastSeq(); got != r+1 {
		t.Errorf("post-promotion seq = %d, want %d (no gap after the replicated prefix)", got, r+1)
	}
	// The replicated index keeps serving the promoted node's queries.
	docs, plan, err := db.QueryPlanned(query.New("docs", query.Eq("v", int64(99))))
	if err != nil || len(docs) != 1 {
		t.Errorf("post-promotion indexed query: %d docs, %v", len(docs), err)
	}
	if plan.Kind == query.PlanScan {
		t.Error("post-promotion query did not use the replicated index")
	}

	// The replica's own subscribers rode across the promotion: strictly
	// increasing stream that includes the post-promotion write.
	wdeadline := time.Now().Add(5 * time.Second)
	for {
		downstream.mu.Lock()
		last := downstream.lastSeq
		errs := append([]string(nil), downstream.errs...)
		downstream.mu.Unlock()
		for _, e := range errs {
			t.Fatalf("downstream subscriber: %s", e)
		}
		if last >= r+1 {
			break
		}
		if time.Now().After(wdeadline) {
			t.Fatalf("downstream subscriber stalled at seq %d, want %d", last, r+1)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestChaosRandomDisconnects hammers the primary while a chaos goroutine
// keeps cutting the replication connection at random intervals. With a
// small fan-out ring the reconnects constantly fall off the ring,
// exercising the whole escalation ladder (ring → sealed segments →
// snapshot) under fire; after quiesce the replica must still converge to
// a byte-equal state. Skipped under -short (CI runs the deterministic
// variants).
func TestChaosRandomDisconnects(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos variant skipped in -short")
	}
	const writers = 32
	const opsEach = 120
	p := startPrimary(t, t.TempDir(), 256) // small ring: disconnects frequently fall behind it
	if err := p.db.CreateTable("docs"); err != nil {
		t.Fatal(err)
	}
	if err := p.db.CreateIndex("docs", "v"); err != nil {
		t.Fatal(err)
	}
	repl := startReplica(t, p.ts.URL, t.TempDir())

	stopChaos := make(chan struct{})
	var chaosWg sync.WaitGroup
	chaosWg.Add(1)
	go func() {
		defer chaosWg.Done()
		r := rand.New(rand.NewSource(42))
		for {
			select {
			case <-stopChaos:
				return
			case <-time.After(time.Duration(1+r.Intn(15)) * time.Millisecond):
				repl.DropConnection()
			}
		}
	}()

	// Paced load: the window stretches over many chaos cuts, so the
	// replica repeatedly loses the stream mid-application.
	wait := hammerPaced(p.db, writers, opsEach, 96, 2*time.Millisecond)
	wait()
	time.Sleep(50 * time.Millisecond) // a few more cuts on the idle tail
	close(stopChaos)
	chaosWg.Wait()

	waitConverged(t, repl, p.db, 30*time.Second)
	assertStateEqual(t, p.db, repl.Store())
	st := repl.Status()
	if st.Reconnects == 0 {
		t.Errorf("chaos run had no reconnects: %+v", st)
	}
	t.Logf("chaos survived: %d reconnects, %d segment catch-ups, %d bootstraps, %d records applied",
		st.Reconnects, st.SegmentCatchups, st.Bootstraps, st.RecordsApplied)
}
