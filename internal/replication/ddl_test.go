package replication_test

// Replicated DDL: CreateIndex is sequenced through the commit pipeline,
// so a replica attached BEFORE the index exists learns it live from the
// stream — no re-bootstrap — and maintains it for its own planner.

import (
	"fmt"
	"testing"
	"time"

	"quaestor/internal/document"
	"quaestor/internal/query"
)

func TestReplicatedDDLArrivesLive(t *testing.T) {
	for _, mode := range []string{"memory", "durable"} {
		t.Run(mode, func(t *testing.T) {
			dir, rdir := "", ""
			if mode == "durable" {
				dir, rdir = t.TempDir(), t.TempDir()
			}
			p := startPrimary(t, dir, 1<<12)
			if err := p.db.CreateTable("docs"); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 40; i++ {
				doc := document.New(fmt.Sprintf("k%02d", i), map[string]any{"v": int64(i % 7)})
				if err := p.db.Insert("docs", doc); err != nil {
					t.Fatal(err)
				}
			}

			// Attach first, index later: the definition must arrive through
			// the live stream, not the bootstrap snapshot.
			repl := startReplica(t, p.ts.URL, rdir)
			waitConverged(t, repl, p.db, 10*time.Second)
			if idx, err := repl.Store().Indexes("docs"); err != nil || len(idx) != 0 {
				t.Fatalf("replica has indexes %v (%v) before the primary created any", idx, err)
			}

			if err := p.db.CreateIndex("docs", "v"); err != nil {
				t.Fatal(err)
			}
			// More writes after the DDL: they must index on the replica too.
			for i := 40; i < 80; i++ {
				doc := document.New(fmt.Sprintf("k%02d", i), map[string]any{"v": int64(i % 7)})
				if err := p.db.Insert("docs", doc); err != nil {
					t.Fatal(err)
				}
			}
			waitConverged(t, repl, p.db, 10*time.Second)

			idx, err := repl.Store().Indexes("docs")
			if err != nil || len(idx) != 1 || idx[0] != "v" {
				t.Fatalf("replica indexes = %v, %v — sequenced DDL did not arrive", idx, err)
			}
			assertStateEqual(t, p.db, repl.Store())

			// The replicated index is live: both planners pick it and agree.
			q := query.New("docs", query.Eq("v", int64(3)))
			rdocs, rplan, err := repl.Store().QueryPlanned(q)
			if err != nil {
				t.Fatal(err)
			}
			pdocs, pplan, err := p.db.QueryPlanned(q)
			if err != nil {
				t.Fatal(err)
			}
			if rplan.Kind != pplan.Kind {
				t.Errorf("plan divergence: replica %v, primary %v", rplan.Kind, pplan.Kind)
			}
			if len(rdocs) != len(pdocs) {
				t.Errorf("indexed query: replica %d docs, primary %d", len(rdocs), len(pdocs))
			}
		})
	}
}

// TestReplicatedDDLSurvivesRestart: a durable replica that applied a
// sequenced CreateIndex recovers it from its own log after restart,
// without consulting the primary.
func TestReplicatedDDLSurvivesRestart(t *testing.T) {
	dir, rdir := t.TempDir(), t.TempDir()
	p := startPrimary(t, dir, 1<<12)
	if err := p.db.CreateTable("docs"); err != nil {
		t.Fatal(err)
	}
	repl := startReplica(t, p.ts.URL, rdir)
	if err := p.db.CreateIndex("docs", "v"); err != nil {
		t.Fatal(err)
	}
	if err := p.db.Insert("docs", document.New("a", map[string]any{"v": int64(1)})); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, repl, p.db, 10*time.Second)
	wantSeq := repl.Store().LastSeq()
	repl.Stop()
	repl.Store().Close()

	r2 := startReplica(t, p.ts.URL, rdir)
	// Recovery alone must restore the index definition and position.
	if got := r2.Store().LastSeq(); got < wantSeq {
		t.Errorf("recovered LastSeq = %d, want >= %d", got, wantSeq)
	}
	idx, err := r2.Store().Indexes("docs")
	if err != nil || len(idx) != 1 || idx[0] != "v" {
		t.Errorf("recovered replica indexes = %v, %v", idx, err)
	}
}
