package replication_test

// Sharded replication end to end: a sharded primary serves per-shard
// replication streams (?shard=i), a sharded replica runs one follower
// loop per shard, each shard pair converges byte-identically, the
// replica's status endpoint reports per-shard statuses, bounced writes
// advertise the primary, and promotion flips every shard at once.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"quaestor/internal/cluster"
	"quaestor/internal/document"
	"quaestor/internal/replication"
	"quaestor/internal/server"
)

func TestShardedReplicationPerShardStreams(t *testing.T) {
	const shards = 2
	prouter := cluster.MustOpen(cluster.Options{Shards: shards})
	psrv := server.NewSharded(prouter, &server.Options{})
	pts := httptest.NewServer(psrv.Handler())
	t.Cleanup(func() {
		pts.CloseClientConnections()
		pts.Close()
		psrv.Close()
		prouter.Close()
	})
	if err := prouter.CreateTable("docs"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 120; i++ {
		doc := document.New(fmt.Sprintf("d%03d", i), map[string]any{"v": int64(i % 9)})
		if err := prouter.Insert("docs", doc); err != nil {
			t.Fatal(err)
		}
	}

	rrouter := cluster.MustOpen(cluster.Options{Shards: shards})
	t.Cleanup(rrouter.Close)
	repls := make([]*replication.Replica, shards)
	for i := 0; i < shards; i++ {
		repls[i] = replication.New(replication.Options{
			Store:      rrouter.Store(i),
			Primary:    pts.URL,
			Name:       fmt.Sprintf("r/shard-%d", i),
			Sharded:    true,
			Shard:      i,
			MinBackoff: 5 * time.Millisecond,
			MaxBackoff: 100 * time.Millisecond,
			Logf:       t.Logf,
		})
		repls[i].Run()
		t.Cleanup(repls[i].Stop)
	}
	rsrv := server.NewSharded(rrouter, &server.Options{})
	rsrv.AttachReplicas(repls)
	rts := httptest.NewServer(rsrv.Handler())
	t.Cleanup(func() {
		rts.CloseClientConnections()
		rts.Close()
		rsrv.Close()
	})

	// DDL after attach: the fan-out sequences one create-index per shard
	// pipeline and every follower learns it live.
	if err := prouter.CreateIndex("docs", "v"); err != nil {
		t.Fatal(err)
	}
	for i := 120; i < 160; i++ {
		doc := document.New(fmt.Sprintf("d%03d", i), map[string]any{"v": int64(i % 9)})
		if err := prouter.Insert("docs", doc); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < shards; i++ {
		waitConverged(t, repls[i], prouter.Store(i), 15*time.Second)
		assertStateEqual(t, prouter.Store(i), rrouter.Store(i))
	}

	// The replica's status endpoint reports one status per shard.
	resp, err := http.Get(rts.URL + "/v1/replication/status")
	if err != nil {
		t.Fatal(err)
	}
	var statuses []replication.Status
	if err := json.NewDecoder(resp.Body).Decode(&statuses); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(statuses) != shards {
		t.Fatalf("status reports %d shards, want %d", len(statuses), shards)
	}
	for i, st := range statuses {
		if st.Shard != i {
			t.Errorf("status[%d].Shard = %d", i, st.Shard)
		}
	}

	// Writes bounce with 503 and advertise the primary for client redirect.
	req, _ := http.NewRequest(http.MethodPut, rts.URL+"/v1/db/docs/d000",
		strings.NewReader(`{"_id":"d000","v":1}`))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("write on sharded replica: status %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get(server.HeaderPrimary); got != pts.URL {
		t.Errorf("X-Quaestor-Primary = %q, want %q", got, pts.URL)
	}

	// Promote flips every shard follower; writes are accepted afterwards.
	resp, err = http.Post(rts.URL+"/v1/replication/promote", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promote: status %d", resp.StatusCode)
	}
	req, _ = http.NewRequest(http.MethodPut, rts.URL+"/v1/db/docs/zz-new",
		strings.NewReader(`{"_id":"zz-new","v":1}`))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("write after sharded promote: status %d, want 200", resp.StatusCode)
	}
}
