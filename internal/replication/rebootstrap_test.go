package replication_test

// Stale-cache regression for replica re-bootstrap: an InvaliDB-backed
// query subscription and an SSE client on the replica hold results
// containing documents that are deleted (or re-versioned) on the primary
// inside a range the replica can only recover by snapshot bootstrap
// (fan-out ring truncated AND WAL snapshot floor ahead of the replica's
// position). The import's synthetic events must invalidate both caches,
// a concurrent reader must never observe a partially-imported store, and
// the replica's InvaliDB order assertion must stay clean.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"quaestor/internal/document"
	"quaestor/internal/query"
	"quaestor/internal/replication"
	"quaestor/internal/server"
	"quaestor/internal/store"
)

// docSet reads a table's id→version map off a store.
func docSet(s *store.Store, table string) (map[string]int64, error) {
	docs, err := s.ScanQuery(query.New(table, nil))
	if err != nil {
		return nil, err
	}
	m := make(map[string]int64, len(docs))
	for _, d := range docs {
		m[d.ID] = d.Version
	}
	return m, nil
}

func sameSet(a, b map[string]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for id, v := range a {
		if b[id] != v {
			return false
		}
	}
	return true
}

// eventSink collects (type, id) pairs from a notification feed.
type eventSink struct {
	mu   sync.Mutex
	seen map[string]bool // "type/id"
}

func newEventSink() *eventSink { return &eventSink{seen: map[string]bool{}} }

func (k *eventSink) add(typ, id string) {
	k.mu.Lock()
	k.seen["type="+typ+" id="+id] = true
	k.mu.Unlock()
}

func (k *eventSink) has(typ, id string) bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.seen["type="+typ+" id="+id]
}

func TestRebootstrapSyntheticEventsInvalidateStaleCaches(t *testing.T) {
	p := startPrimary(t, t.TempDir(), 64) // tiny ring: forces truncation
	if err := p.db.CreateTable("docs"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := p.db.Put("docs", document.New(fmt.Sprintf("k%03d", i), map[string]any{"v": int64(1)})); err != nil {
			t.Fatal(err)
		}
	}

	rdir := t.TempDir()
	repl := startReplica(t, p.ts.URL, rdir)
	rsrv := server.New(repl.Store(), &server.Options{})
	rsrv.AttachReplica(repl)
	rts := httptest.NewServer(rsrv.Handler())
	t.Cleanup(func() {
		rts.CloseClientConnections()
		rts.Close()
		rsrv.Close()
	})
	waitConverged(t, repl, p.db, 15*time.Second)

	// An InvaliDB-backed query subscription on the replica server: its
	// result set holds every v=1 document, including the two about to be
	// deleted inside the collapsed range.
	invSink := newEventSink()
	sub, err := rsrv.Subscribe(query.New("docs", query.Eq("v", int64(1))))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	go func() {
		for n := range sub.Events() {
			if n.Doc != nil {
				invSink.add(n.Type.String(), n.Doc.ID)
			}
		}
	}()

	// An SSE client over the replica's HTTP surface, same query.
	sseSink := newEventSink()
	sseResp, err := http.Get(rts.URL + `/v1/subscribe?table=docs&q={"v":1}`)
	if err != nil {
		t.Fatal(err)
	}
	if sseResp.StatusCode != http.StatusOK {
		t.Fatalf("SSE subscribe status %d", sseResp.StatusCode)
	}
	if sseResp.Header.Get("X-Quaestor-Replica") == "" {
		t.Error("replica SSE stream missing X-Quaestor-Replica header")
	}
	go func() {
		defer sseResp.Body.Close()
		rd := bufio.NewReader(sseResp.Body)
		for {
			line, err := rd.ReadString('\n')
			if err != nil {
				return
			}
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var ev server.SubscriptionEvent
			if json.Unmarshal([]byte(strings.TrimSpace(strings.TrimPrefix(line, "data: "))), &ev) == nil {
				sseSink.add(ev.Type, ev.ID)
			}
		}
	}()

	// Freeze the replica (simulated outage) and capture the state its
	// subscribers currently hold.
	repl.Stop()
	oldSet, err := docSet(repl.Store(), "docs")
	if err != nil {
		t.Fatal(err)
	}

	// The primary moves on: two deletes and one re-version inside what
	// will become the collapsed range, one new match, and enough filler
	// writes to overrun the fan-out ring. The snapshot then truncates the
	// WAL, so the floor lands ahead of the replica's position and rejoin
	// can only go through a full re-bootstrap.
	for _, id := range []string{"k042", "k077"} {
		if err := p.db.Delete("docs", id); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.db.Update("docs", "k005", store.UpdateSpec{Set: map[string]any{"v": int64(2)}}); err != nil {
		t.Fatal(err)
	}
	if err := p.db.Put("docs", document.New("x001", map[string]any{"v": int64(1)})); err != nil {
		t.Fatal(err)
	}
	if err := p.db.CreateTable("filler"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := p.db.Put("filler", document.New(fmt.Sprintf("f%04d", i), map[string]any{"i": int64(i)})); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.db.Snapshot(); err != nil {
		t.Fatal(err)
	}
	newSet, err := docSet(p.db, "docs")
	if err != nil {
		t.Fatal(err)
	}

	// Concurrent reader: during the whole rejoin, every read of the
	// replica must observe either the complete old state or the complete
	// new state — never a mix.
	var readerMu sync.Mutex
	var readerErrs []string
	readerStop := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-readerStop:
				return
			default:
			}
			got, err := docSet(repl.Store(), "docs")
			if err != nil {
				continue // table lookup raced the swap; the next read settles it
			}
			if !sameSet(got, oldSet) && !sameSet(got, newSet) {
				readerMu.Lock()
				if len(readerErrs) < 3 {
					readerErrs = append(readerErrs, fmt.Sprintf("reader observed a mixed store: %d docs (old %d, new %d)", len(got), len(oldSet), len(newSet)))
				}
				readerMu.Unlock()
			}
		}
	}()

	// Rejoin: same store, new replication loop.
	repl2 := replication.New(replication.Options{
		Store:      repl.Store(),
		Primary:    p.ts.URL,
		Name:       "r1",
		MinBackoff: 5 * time.Millisecond,
		MaxBackoff: 100 * time.Millisecond,
		Logf:       t.Logf,
	})
	repl2.Run()
	t.Cleanup(repl2.Stop)
	waitConverged(t, repl2, p.db, 15*time.Second)
	close(readerStop)
	readerWG.Wait()
	readerMu.Lock()
	for _, e := range readerErrs {
		t.Error(e)
	}
	readerMu.Unlock()

	st := repl2.Status()
	if st.Bootstraps == 0 {
		t.Fatalf("status = %+v: rejoin should have required a snapshot bootstrap", st)
	}
	if st.SyntheticDeletes != 2 {
		t.Errorf("SyntheticDeletes = %d, want 2 (k042, k077)", st.SyntheticDeletes)
	}
	// 200 filler + x001 created, k005 re-versioned.
	if st.SyntheticPuts != 202 {
		t.Errorf("SyntheticPuts = %d, want 202", st.SyntheticPuts)
	}

	// Both subscribers converge: the synthetic deletes remove the
	// vanished documents from their held results, the re-versioned
	// document leaves the v=1 result set, and the new match enters it.
	expect := []struct{ typ, id string }{
		{"remove", "k042"},
		{"remove", "k077"},
		{"remove", "k005"},
		{"add", "x001"},
	}
	deadline := time.Now().Add(10 * time.Second)
	for _, want := range expect {
		for !invSink.has(want.typ, want.id) || !sseSink.has(want.typ, want.id) {
			if time.Now().After(deadline) {
				t.Fatalf("subscribers never observed %s %s (invalidb=%v sse=%v)",
					want.typ, want.id, invSink.has(want.typ, want.id), sseSink.has(want.typ, want.id))
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// The floor-sequenced synthetic batch must not trip the pipeline's
	// order assertion on either node.
	if !rsrv.InvaliDB().Quiesce(5 * time.Second) {
		t.Error("replica InvaliDB did not quiesce")
	}
	if v := rsrv.InvaliDB().OrderViolations(); v != 0 {
		t.Errorf("replica OrderViolations = %d, want 0", v)
	}
	if v := p.srv.InvaliDB().OrderViolations(); v != 0 {
		t.Errorf("primary OrderViolations = %d, want 0", v)
	}
	assertStateEqual(t, p.db, repl.Store())
}
