package replication_test

// Integration tests for log-shipping replication. They live in an
// external test package so they can drive the full loop — store,
// server HTTP endpoints, and the replica — together, the way a real
// deployment wires them.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"quaestor/internal/document"
	"quaestor/internal/query"
	"quaestor/internal/replication"
	"quaestor/internal/server"
	"quaestor/internal/store"
	"quaestor/internal/testutil"
	"quaestor/internal/wal"
)

// primary bundles a store with the HTTP surface replicas talk to.
type primary struct {
	db  *store.Store
	srv *server.Server
	ts  *httptest.Server
}

// startPrimary opens a store (durable when dir != "") behind a full
// server handler. ringSize tunes the fan-out ring so tests can force
// truncation.
func startPrimary(t *testing.T, dir string, ringSize int) *primary {
	t.Helper()
	opts := &store.Options{ChangeBuffer: ringSize}
	if dir != "" {
		opts.DataDir = dir
		opts.Durability = store.Durability{Fsync: wal.FsyncNever}
	}
	db, err := store.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(db, &server.Options{})
	ts := httptest.NewServer(srv.Handler())
	p := &primary{db: db, srv: srv, ts: ts}
	t.Cleanup(p.close)
	return p
}

func (p *primary) close() {
	if p.ts != nil {
		// Kill live replication streams first: Close waits for handlers,
		// and the stream handler only exits on disconnect or store close.
		p.ts.CloseClientConnections()
		p.ts.Close()
		p.ts = nil
	}
	if p.srv != nil {
		p.srv.Close()
		p.srv = nil
	}
	if p.db != nil {
		p.db.Close()
		p.db = nil
	}
}

// startReplica opens a replica store (durable when dir != "") following
// the primary.
func startReplica(t *testing.T, primaryURL, dir string) *replication.Replica {
	t.Helper()
	opts := &store.Options{}
	if dir != "" {
		opts.DataDir = dir
		opts.Durability = store.Durability{Fsync: wal.FsyncNever}
	}
	db, err := store.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	repl := replication.New(replication.Options{
		Store:      db,
		Primary:    primaryURL,
		Name:       "r1",
		MinBackoff: 5 * time.Millisecond,
		MaxBackoff: 100 * time.Millisecond,
		Logf:       t.Logf,
	})
	repl.Run()
	t.Cleanup(func() {
		repl.Stop()
		db.Close()
	})
	return repl
}

// dumpState renders a store's full logical state — tables, secondary
// index definitions, and every document with its version — as one
// canonical string, so two stores can be compared byte-for-byte.
func dumpState(t *testing.T, s *store.Store) string {
	t.Helper()
	var sb strings.Builder
	for _, tbl := range s.Tables() {
		paths, err := s.Indexes(tbl)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&sb, "table %s indexes=%v\n", tbl, paths)
		docs, err := s.ScanQuery(query.New(tbl, nil))
		if err != nil {
			t.Fatal(err)
		}
		sort.Slice(docs, func(i, j int) bool { return docs[i].ID < docs[j].ID })
		for _, d := range docs {
			js, err := json.Marshal(d)
			if err != nil {
				t.Fatal(err)
			}
			fmt.Fprintf(&sb, "  %s\n", js)
		}
	}
	return sb.String()
}

// waitConverged polls until the replica has applied everything the
// primary has acknowledged.
func waitConverged(t *testing.T, repl *replication.Replica, p *store.Store, timeout time.Duration) {
	t.Helper()
	want := p.LastSeq()
	deadline := time.Now().Add(timeout)
	for repl.Store().LastSeq() < want {
		if time.Now().After(deadline) {
			st := repl.Status()
			t.Fatalf("replica stalled: applied %d, primary at %d (state=%s, status=%+v)",
				repl.Store().LastSeq(), want, st.State, st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// assertStateEqual requires the replica's state to be byte-equal to the
// primary's: documents, versions, index definitions, and LastSeq.
func assertStateEqual(t *testing.T, p, r *store.Store) {
	t.Helper()
	pd, rd := dumpState(t, p), dumpState(t, r)
	if pd != rd {
		t.Errorf("replica state differs from primary:\n--- primary ---\n%s--- replica ---\n%s", pd, rd)
	}
	if pl, rl := p.LastSeq(), r.LastSeq(); pl != rl {
		t.Errorf("LastSeq: primary %d, replica %d", pl, rl)
	}
}

// hammer runs concurrent writers doing randomized inserts, upserts,
// partial updates and deletes on a shared key space. It returns a wait
// function.
func hammer(p *store.Store, writers, opsEach, keys int) func() {
	return hammerPaced(p, writers, opsEach, keys, 0)
}

// hammerPaced is hammer with an occasional per-writer pause, stretching
// the load window so mid-load events (disconnects, failover) land while
// writes are genuinely in flight.
func hammerPaced(p *store.Store, writers, opsEach, keys int, pace time.Duration) func() {
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for op := 0; op < opsEach; op++ {
				if pace > 0 && op%8 == 0 {
					time.Sleep(time.Duration(r.Int63n(int64(pace))))
				}
				id := fmt.Sprintf("k%03d", r.Intn(keys))
				switch r.Intn(4) {
				case 0:
					_ = p.Insert("docs", document.New(id, map[string]any{"v": int64(r.Intn(10)), "w": seed}))
				case 1:
					_ = p.Put("docs", document.New(id, map[string]any{"v": int64(r.Intn(10)), "w": seed}))
				case 2:
					_, _ = p.Update("docs", id, store.UpdateSpec{Inc: map[string]float64{"n": 1}})
				case 3:
					_ = p.Delete("docs", id)
				}
			}
		}(int64(w + 1))
	}
	return wg.Wait
}

// TestPropertyReplicaConvergesUnderConcurrentWriters is the replication
// core property: with 64 concurrent writers racing on the primary and a
// replica attached mid-stream, the replica converges — after quiesce —
// to a state byte-equal to the primary (documents, versions, index
// definitions, LastSeq), for both in-memory and durable pairs. A
// mid-load connection drop exercises reconnect (re-delivered ring
// batches must be no-ops).
func TestPropertyReplicaConvergesUnderConcurrentWriters(t *testing.T) {
	const writers = 64
	opsEach := 40
	if testing.Short() {
		opsEach = 15
	}
	for _, mode := range []string{"memory", "durable"} {
		t.Run(mode, func(t *testing.T) {
			// Attach/detach must not strand sync loops or pump goroutines
			// past the subtest's own replica/primary teardown.
			testutil.VerifyNoGoroutineLeaks(t)
			dir, rdir := "", ""
			if mode == "durable" {
				dir, rdir = t.TempDir(), t.TempDir()
			}
			p := startPrimary(t, dir, 1<<15)
			if err := p.db.CreateTable("docs"); err != nil {
				t.Fatal(err)
			}
			if err := p.db.CreateIndex("docs", "v"); err != nil {
				t.Fatal(err)
			}

			wait := hammer(p.db, writers, opsEach, 48)
			// Attach mid-stream: let a chunk of the load land first.
			for p.db.LastSeq() < uint64(writers*opsEach/4) {
				time.Sleep(time.Millisecond)
			}
			repl := startReplica(t, p.ts.URL, rdir)
			// One mid-load disconnect: the loop must reconnect from its
			// position and re-application of overlapping batches must be
			// a no-op.
			for repl.Store().LastSeq() == 0 {
				time.Sleep(time.Millisecond)
			}
			repl.DropConnection()
			wait()

			waitConverged(t, repl, p.db, 15*time.Second)
			assertStateEqual(t, p.db, repl.Store())

			// The replica maintains its own secondary indexes: its planner
			// must make the same choice as the primary's (identical state
			// means identical index statistics) and return the same rows.
			q := query.New("docs", query.Eq("v", int64(3)))
			rdocs, rplan, err := repl.Store().QueryPlanned(q)
			if err != nil {
				t.Fatal(err)
			}
			pdocs, pplan, err := p.db.QueryPlanned(q)
			if err != nil {
				t.Fatal(err)
			}
			if rplan.Kind != pplan.Kind {
				t.Errorf("plan divergence: replica %v, primary %v", rplan.Kind, pplan.Kind)
			}
			if len(rdocs) != len(pdocs) {
				t.Errorf("indexed query: replica %d docs, primary %d", len(rdocs), len(pdocs))
			}

			// The primary reports the replica in its per-subscriber
			// pipeline stats once the live stream is attached.
			statsDeadline := time.Now().Add(5 * time.Second)
			for {
				found := false
				for _, sub := range p.db.PipelineStats().Stream.Subscribers {
					if sub.Name == "replica:r1" {
						found = true
					}
				}
				if found {
					break
				}
				if time.Now().After(statsDeadline) {
					t.Error("primary pipeline stats never listed subscriber replica:r1")
					break
				}
				time.Sleep(2 * time.Millisecond)
			}

			// Read-only until promoted.
			if err := repl.Store().Insert("docs", document.New("direct", nil)); err != store.ErrReadOnly {
				t.Errorf("direct write on replica: err = %v, want ErrReadOnly", err)
			}
		})
	}
}

// TestReplicaIdempotentReapply proves re-delivery is a no-op at the
// apply layer: applying the same replicated batch twice leaves the
// state, the sequence counter, and the replica's own change stream
// untouched the second time.
func TestReplicaIdempotentReapply(t *testing.T) {
	p := store.MustOpen(nil)
	defer p.Close()
	if err := p.CreateTable("docs"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := p.Put("docs", document.New(fmt.Sprintf("k%d", i%7), map[string]any{"i": int64(i)})); err != nil {
			t.Fatal(err)
		}
	}
	sub, err := p.SubscribeFrom("capture", 0)
	if err != nil {
		t.Fatal(err)
	}
	var recs []wal.Record
	for len(recs) < 20 {
		recs = append(recs, replication.EventsToRecords(<-sub.Events())...)
	}
	sub.Cancel()

	r := store.MustOpen(nil)
	defer r.Close()
	r.SetReadOnly(true)
	events, cancel := r.SubscribeNamed("check")
	defer cancel()

	n, err := r.ApplyReplicated(recs)
	if err != nil || n != 20 {
		t.Fatalf("first apply: n=%d err=%v, want 20 applied", n, err)
	}
	first := dumpState(t, r)
	n, err = r.ApplyReplicated(recs) // full re-delivery
	if err != nil || n != 0 {
		t.Fatalf("re-apply: n=%d err=%v, want 0 applied", n, err)
	}
	if again := dumpState(t, r); again != first {
		t.Errorf("re-apply changed state:\n%s\nvs\n%s", first, again)
	}
	if r.LastSeq() != 20 {
		t.Errorf("LastSeq = %d after re-apply, want 20", r.LastSeq())
	}
	// Exactly 20 events on the replica's own stream — the duplicate
	// batch must not republish.
	seen := 0
	timeout := time.After(5 * time.Second)
	for seen < 20 {
		select {
		case ev := <-events:
			seen++
			if ev.Seq != uint64(seen) {
				t.Fatalf("replica stream seq %d at position %d", ev.Seq, seen)
			}
		case <-timeout:
			t.Fatalf("replica stream delivered %d events, want 20", seen)
		}
	}
	select {
	case ev := <-events:
		t.Fatalf("duplicate event republished: seq %d", ev.Seq)
	case <-time.After(50 * time.Millisecond):
	}
}

// TestReplicaCrashRestartResumes is the crash-and-reconnect variant: a
// durable replica is stopped and its store closed mid-load (a crash),
// then reopened from its own WAL and re-attached. Recovery restores the
// replication position; the overlap the ring re-delivers must apply as
// a no-op and the pair must still converge byte-equal.
func TestReplicaCrashRestartResumes(t *testing.T) {
	// The crashed replica's first incarnation must fully wind down — a
	// leaked sync loop from the pre-crash Replica would show up here.
	testutil.VerifyNoGoroutineLeaks(t)
	const writers = 32
	opsEach := 30
	if testing.Short() {
		opsEach = 12
	}
	p := startPrimary(t, t.TempDir(), 1<<15)
	if err := p.db.CreateTable("docs"); err != nil {
		t.Fatal(err)
	}
	if err := p.db.CreateIndex("docs", "v"); err != nil {
		t.Fatal(err)
	}
	rdir := t.TempDir()

	wait := hammer(p.db, writers, opsEach, 32)
	repl := startReplica(t, p.ts.URL, rdir)

	// Crash the replica once it has applied something.
	deadline := time.Now().Add(10 * time.Second)
	for repl.Store().LastSeq() < uint64(writers*opsEach/8) {
		if time.Now().After(deadline) {
			t.Fatalf("replica never progressed (applied %d)", repl.Store().LastSeq())
		}
		time.Sleep(time.Millisecond)
	}
	repl.Stop()
	crashedAt := repl.Store().LastSeq()
	repl.Store().Close()

	// Reopen from the replica's own WAL: recovery must land at (or, with
	// fsync=never, at most at) the crash position, and resuming from the
	// recovered floor must be seamless.
	db2, err := store.Open(&store.Options{DataDir: rdir, Durability: store.Durability{Fsync: wal.FsyncNever}})
	if err != nil {
		t.Fatal(err)
	}
	if got := db2.LastSeq(); got > crashedAt {
		t.Fatalf("recovered LastSeq %d beyond crash position %d", got, crashedAt)
	}
	repl2 := replication.New(replication.Options{
		Store:      db2,
		Primary:    p.ts.URL,
		Name:       "r1",
		MinBackoff: 5 * time.Millisecond,
		MaxBackoff: 100 * time.Millisecond,
		Logf:       t.Logf,
	})
	repl2.Run()
	t.Cleanup(func() {
		repl2.Stop()
		db2.Close()
	})

	wait()
	waitConverged(t, repl2, p.db, 15*time.Second)
	assertStateEqual(t, p.db, db2)
	if st := repl2.Status(); st.Bootstraps != 0 {
		t.Errorf("restarted replica re-bootstrapped (%d times); should resume from its WAL position", st.Bootstraps)
	}
}

// TestReplicaSegmentShippingFallback forces a rejoining replica's
// position out of the fan-out ring: the replica goes offline, the
// primary takes far more writes than the ring retains, and on rejoin the
// stream refuses with 410 (commitlog.ErrSeqTruncated), so the replica
// must catch up through shipped sealed WAL segments before streaming.
func TestReplicaSegmentShippingFallback(t *testing.T) {
	p := startPrimary(t, t.TempDir(), 64) // tiny ring
	if err := p.db.CreateTable("docs"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := p.db.Put("docs", document.New(fmt.Sprintf("k%04d", i), map[string]any{"i": int64(i)})); err != nil {
			t.Fatal(err)
		}
	}
	rdir := t.TempDir()
	repl := startReplica(t, p.ts.URL, rdir)
	waitConverged(t, repl, p.db, 15*time.Second)
	repl.Stop() // replica goes offline with state at seq 100

	// The primary moves on far past the ring's retention (no snapshot:
	// the sealed segments still hold the whole gap).
	for i := 0; i < 1000; i++ {
		if err := p.db.Put("docs", document.New(fmt.Sprintf("k%04d", i%300), map[string]any{"i": int64(i), "r": true})); err != nil {
			t.Fatal(err)
		}
	}

	// Rejoin: same store, new replication loop.
	repl2 := replication.New(replication.Options{
		Store:      repl.Store(),
		Primary:    p.ts.URL,
		Name:       "r1",
		MinBackoff: 5 * time.Millisecond,
		MaxBackoff: 100 * time.Millisecond,
		Logf:       t.Logf,
	})
	repl2.Run()
	t.Cleanup(repl2.Stop)
	waitConverged(t, repl2, p.db, 15*time.Second)
	assertStateEqual(t, p.db, repl2.Store())
	st := repl2.Status()
	if st.SegmentCatchups == 0 {
		t.Errorf("status = %+v: expected at least one WAL segment catch-up", st)
	}
	if st.Bootstraps != 0 {
		t.Errorf("status = %+v: segment shipping should have avoided a re-bootstrap", st)
	}
}

// TestReplicaRebootstrapsPastSnapshotTruncation covers the coarsest
// escalation: the primary snapshotted (truncating its WAL) beyond the
// history a late replica needs, so neither the ring nor the sealed
// segments can cover the gap and the replica must take a fresh snapshot
// bootstrap. The in-memory-primary variant has no WAL at all and must
// bootstrap directly.
func TestReplicaRebootstrapsPastSnapshotTruncation(t *testing.T) {
	t.Run("durable-primary", func(t *testing.T) {
		p := startPrimary(t, t.TempDir(), 64)
		if err := p.db.CreateTable("docs"); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 500; i++ {
			if err := p.db.Put("docs", document.New(fmt.Sprintf("k%04d", i), map[string]any{"i": int64(i)})); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := p.db.Snapshot(); err != nil { // truncates the WAL
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ { // more than the ring retains
			if err := p.db.Put("docs", document.New(fmt.Sprintf("x%04d", i), map[string]any{"i": int64(i)})); err != nil {
				t.Fatal(err)
			}
		}
		repl := startReplica(t, p.ts.URL, t.TempDir())
		waitConverged(t, repl, p.db, 15*time.Second)
		assertStateEqual(t, p.db, repl.Store())
		if st := repl.Status(); st.Bootstraps == 0 {
			t.Errorf("status = %+v: expected a snapshot bootstrap", st)
		}
	})
	t.Run("memory-primary", func(t *testing.T) {
		p := startPrimary(t, "", 64)
		if err := p.db.CreateTable("docs"); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 500; i++ {
			if err := p.db.Put("docs", document.New(fmt.Sprintf("k%04d", i), map[string]any{"i": int64(i)})); err != nil {
				t.Fatal(err)
			}
		}
		repl := startReplica(t, p.ts.URL, "")
		waitConverged(t, repl, p.db, 15*time.Second)
		assertStateEqual(t, p.db, repl.Store())
		if st := repl.Status(); st.Bootstraps == 0 {
			t.Errorf("status = %+v: expected a snapshot bootstrap", st)
		}
	})
}

// TestChainedSubscriberRefusedAcrossBootstrapGap: after a snapshot
// import collapses a sequence range, a subscriber (e.g. a chained
// replica) attaching from inside that range must get ErrSeqTruncated —
// not a silent fast-forward over history this node never saw event-by-
// event.
func TestChainedSubscriberRefusedAcrossBootstrapGap(t *testing.T) {
	p := startPrimary(t, "", 1<<12)
	if err := p.db.CreateTable("docs"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if err := p.db.Put("docs", document.New(fmt.Sprintf("k%03d", i), map[string]any{"i": int64(i)})); err != nil {
			t.Fatal(err)
		}
	}
	repl := startReplica(t, p.ts.URL, "")
	waitConverged(t, repl, p.db, 10*time.Second)

	// The replica bootstrapped from a snapshot with floor ≈300: it never
	// saw events 1..floor individually, so a chained consumer at seq 50
	// must be refused and re-bootstrap instead.
	if _, err := repl.Store().SubscribeFrom("chained", 50); err == nil {
		t.Fatal("SubscribeFrom inside the snapshot-collapsed range succeeded; chained replica would silently skip history")
	}
	// At or past the floor the live feed works.
	sub, err := repl.Store().SubscribeFrom("chained", repl.Store().LastSeq())
	if err != nil {
		t.Fatalf("SubscribeFrom at the replica's position: %v", err)
	}
	sub.Cancel()
}

// TestReplicaHTTPSurface drives the replica through its own server
// handler: reads succeed with staleness headers, writes are refused with
// 503 until promotion, and /v1/replication/status reports both roles.
func TestReplicaHTTPSurface(t *testing.T) {
	p := startPrimary(t, "", 1<<12)
	if err := p.db.CreateTable("docs"); err != nil {
		t.Fatal(err)
	}
	if err := p.db.Put("docs", document.New("a", map[string]any{"v": int64(1)})); err != nil {
		t.Fatal(err)
	}

	// Primary role status.
	var role server.ReplicationRole
	getJSON(t, p.ts.URL+"/v1/replication/status", &role)
	if role.Role != "primary" || role.LastSeq != 1 {
		t.Errorf("primary status = %+v", role)
	}

	repl := startReplica(t, p.ts.URL, "")
	rsrv := server.New(repl.Store(), &server.Options{})
	rsrv.AttachReplica(repl)
	rts := httptest.NewServer(rsrv.Handler())
	t.Cleanup(func() {
		rts.Close()
		rsrv.Close()
	})
	waitConverged(t, repl, p.db, 10*time.Second)

	// Replica read: 200 plus replica headers.
	resp, err := http.Get(rts.URL + "/v1/db/docs/a")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("replica read status %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Quaestor-Replica") == "" {
		t.Error("replica read missing X-Quaestor-Replica header")
	}

	// Replica write: refused while following.
	req, _ := http.NewRequest(http.MethodPut, rts.URL+"/v1/db/docs/b", strings.NewReader(`{"v":2}`))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("replica write status %d, want 503", resp.StatusCode)
	}

	// Replica role status.
	var st replication.Status
	getJSON(t, rts.URL+"/v1/replication/status", &st)
	if st.State == "" || !st.ReadOnly {
		t.Errorf("replica status = %+v", st)
	}

	// Promote over HTTP; writes then succeed.
	presp, err := http.Post(rts.URL+"/v1/replication/promote", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Errorf("promote status %d", presp.StatusCode)
	}
	req, _ = http.NewRequest(http.MethodPut, rts.URL+"/v1/db/docs/b", strings.NewReader(`{"v":2}`))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("post-promotion write status %d, want 200", resp.StatusCode)
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}
