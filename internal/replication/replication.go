// Package replication implements Quaestor's log-shipping replication:
// replicas that bootstrap from a primary snapshot and then follow the
// primary's ordered commit pipeline over HTTP, applying batches through
// the store's recovery-style idempotent apply path.
//
// The paper's DBaaS setting assumes the backing store survives node loss
// and keeps serving reads while invalidations flow; this package supplies
// that property for the single-node store. The design follows the
// log-shipping architecture of replicated cloud data systems: the commit
// pipeline already delivers contiguous, strictly Seq-ordered batches
// (store.SubscribeFrom), which is exactly the replica feed, and the WAL's
// record format is the wire format.
//
// A replica escalates through three catch-up channels, coarsest last:
//
//  1. the fan-out ring — SubscribeFrom(lastSeq) streams retained events
//     plus the live tail (GET /v1/replication/stream);
//  2. sealed WAL segments — history older than the ring but newer than
//     the primary's snapshot floor (GET /v1/replication/wal);
//  3. a full snapshot bootstrap — when even the log has been truncated
//     past the replica's position (GET /v1/replication/snapshot).
//
// Re-delivery across channel switches and reconnects is harmless: the
// apply path skips records at or below the replica's sequence, so a
// re-delivered batch is a no-op. The replica maintains its own WAL and
// indexes, serves reads with a reported staleness bound, and can be
// promoted to a writable primary (its own pipeline keeps serving its
// subscribers across the transition).
package replication

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"encoding/json"

	"quaestor/internal/commitlog"
	"quaestor/internal/store"
	"quaestor/internal/wal"
)

// Frame is one unit of the replication stream: a batch of contiguous,
// Seq-ordered records plus the primary's progress. Frames without
// records are heartbeats — they carry the primary's LastSeq so an idle
// replica can still bound its staleness.
type Frame struct {
	Recs []wal.Record `json:"recs,omitempty"`
	// LastSeq is the primary's newest assigned sequence at send time.
	LastSeq uint64 `json:"lastSeq"`
	// At is the primary's wall clock at send time (Unix nanoseconds).
	At int64 `json:"at"`
}

// Stream endpoint headers.
const (
	// HeaderSnapshotSeq carries the primary's snapshot floor on WAL
	// exports: records at or below it are gone from the log.
	HeaderSnapshotSeq = "X-Quaestor-Snapshot-Seq"
	// HeaderLastSeq carries the primary's newest sequence.
	HeaderLastSeq = "X-Quaestor-Last-Seq"
)

// EventsToRecords converts a commit-pipeline batch to shippable log
// records — the same Event→Record mapping the primary's write path uses
// when logging, so stream delivery and segment shipping are
// interchangeable on the replica.
func EventsToRecords(events []commitlog.Event) []wal.Record {
	return AppendRecords(nil, events)
}

// AppendRecords is EventsToRecords onto a reusable buffer: the pump that
// feeds an attached replica converts every batch the primary commits,
// and per-batch allocations there turn into GC pressure on the whole
// node.
func AppendRecords(dst []wal.Record, events []commitlog.Event) []wal.Record {
	for i := range events {
		ev := &events[i]
		rec := wal.Record{Seq: ev.Seq, Table: ev.Table}
		switch ev.Op {
		case commitlog.OpDelete:
			rec.Kind = wal.KindDelete
			rec.ID = ev.After.ID
			rec.Version = ev.After.Version
		case commitlog.OpCreateIndex:
			// Sequenced DDL rides the live stream in position, so a
			// connected replica learns the index without re-bootstrap.
			rec.Kind = wal.KindCreateIndex
			rec.Path = ev.Path
		default:
			rec.Kind = wal.KindPut
			rec.Doc = ev.After
		}
		dst = append(dst, rec)
	}
	return dst
}

// State names a replica's position in its lifecycle.
type State string

// Replica lifecycle states.
const (
	StateConnecting    State = "connecting"
	StateBootstrapping State = "bootstrapping"
	StateCatchingUp    State = "catching-up"
	StateStreaming     State = "streaming"
	StateStopped       State = "stopped"
	StatePromoted      State = "promoted"
	// StateDemoted marks a fenced ex-primary: a node that lost a failover
	// election while unreachable and, having come back, now refuses writes
	// (503) and advertises its successor via X-Quaestor-Primary. No Replica
	// loop runs in this state — it names the server-side fence so status
	// endpoints and stats report the node's role truthfully.
	StateDemoted State = "demoted"
)

// Options configures a Replica.
type Options struct {
	// Store is the replica's local store (typically opened read-only with
	// its own DataDir). Required.
	Store *store.Store
	// Primary is the primary server's base URL. Required.
	Primary string
	// Name identifies this replica in the primary's per-subscriber
	// pipeline stats (default "replica").
	Name string
	// Client performs the HTTP requests (default: a client with no
	// timeout — the stream is long-lived).
	Client *http.Client
	// Token is a bearer token for primaries with authorization enabled.
	Token string
	// Sharded selects one shard of a sharded primary: every replication
	// request carries shard=Shard, and the replica follows exactly that
	// shard's WAL, snapshot lineage, and commit pipeline. A sharded
	// primary runs one Replica loop per shard.
	Sharded bool
	// Shard is the shard index this replica follows (used when Sharded).
	Shard int
	// MinBackoff/MaxBackoff bound the reconnect backoff (defaults
	// 100ms/5s).
	MinBackoff, MaxBackoff time.Duration
	// Logf receives progress and reconnect messages (default: discard).
	Logf func(format string, args ...any)
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Name == "" {
		out.Name = "replica"
	}
	if out.Client == nil {
		//lint:quaestor ctxdeadline -- the replication stream is long-lived by design; liveness comes from heartbeats and reconnect backoff, not a per-request deadline
		out.Client = &http.Client{}
	}
	if out.MinBackoff <= 0 {
		out.MinBackoff = 100 * time.Millisecond
	}
	if out.MaxBackoff <= 0 {
		out.MaxBackoff = 5 * time.Second
	}
	if out.Logf == nil {
		out.Logf = func(string, ...any) {}
	}
	return out
}

// Replica follows a primary. Create with New, drive with Start (blocking
// — run it on its own goroutine or use Run), observe with Status, end
// with Stop or Promote.
type Replica struct {
	opts Options
	db   *store.Store

	mu          sync.Mutex
	state       State
	cancel      context.CancelFunc // cancels the in-flight attempt
	started     bool
	stopped     bool
	primarySeq  uint64    // newest LastSeq observed from the primary
	lastContact time.Time // last frame (or successful transfer) received
	freshAsOf   time.Time // last moment applied == primary's LastSeq

	bootstraps  uint64
	segCatchups uint64
	reconnects  uint64
	frames      uint64
	applied     uint64
	// synthDeletes/synthPuts accumulate the synthetic events re-bootstrap
	// imports published (the old-vs-imported state diff).
	synthDeletes uint64
	synthPuts    uint64

	stop chan struct{} // closed by Stop
	done chan struct{} // closed when the loop exits
}

// New creates a replica for opts without contacting the primary yet.
// The local store is put in read-only mode immediately.
func New(opts Options) *Replica {
	o := opts.withDefaults()
	o.Store.SetReadOnly(true)
	return &Replica{
		opts:  o,
		db:    o.Store,
		state: StateConnecting,
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
}

// Run starts the replication loop on its own goroutine and returns.
// Running twice, or after Stop, is a no-op.
func (r *Replica) Run() {
	r.mu.Lock()
	if r.started || r.stopped {
		r.mu.Unlock()
		return
	}
	r.started = true
	r.mu.Unlock()
	go r.loop()
}

// Done is closed when the replication loop has fully exited.
func (r *Replica) Done() <-chan struct{} { return r.done }

// Store returns the replica's local store.
func (r *Replica) Store() *store.Store { return r.db }

// loop reconnects forever (with capped backoff) until Stop or Promote.
func (r *Replica) loop() {
	defer close(r.done)
	backoff := r.opts.MinBackoff
	for {
		if r.isStopped() {
			r.setState(StateStopped)
			return
		}
		before := r.db.LastSeq()
		err := r.syncOnce()
		if r.isStopped() {
			r.setState(StateStopped)
			return
		}
		if err != nil {
			r.opts.Logf("replication: %v (reconnecting in %v)", err, backoff)
		}
		r.mu.Lock()
		r.reconnects++
		r.state = StateConnecting
		r.mu.Unlock()
		if r.db.LastSeq() > before {
			backoff = r.opts.MinBackoff // made progress: reset
		} else if backoff *= 2; backoff > r.opts.MaxBackoff {
			backoff = r.opts.MaxBackoff
		}
		select {
		case <-time.After(backoff):
		case <-r.stop:
		}
	}
}

// syncOnce runs one connection lifecycle: escalate through the catch-up
// channels until the live stream attaches, then apply it until it drops.
func (r *Replica) syncOnce() error {
	ctx, cancel := context.WithCancel(context.Background())
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		cancel()
		return nil
	}
	r.cancel = cancel
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		r.cancel = nil
		r.mu.Unlock()
		cancel()
	}()

	// A fresh replica always bootstraps, even when the primary's ring
	// still covers sequence 0: the snapshot's meta frame is what carries
	// table and secondary-index definitions, which the event stream does
	// not (indexes created on the primary after attach reach replicas
	// through shipped DDL records or a re-bootstrap, not the stream).
	if r.db.LastSeq() == 0 {
		if err := r.bootstrap(ctx); err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
	}

	for attempt := 0; ; attempt++ {
		if ctx.Err() != nil {
			return nil
		}
		from := r.db.LastSeq()
		resp, err := r.get(ctx, "/v1/replication/stream?from="+strconv.FormatUint(from, 10)+"&id="+url.QueryEscape(r.opts.Name))
		if err != nil {
			return err
		}
		switch resp.StatusCode {
		case http.StatusOK:
			err := r.applyStream(resp.Body)
			resp.Body.Close()
			return err
		case http.StatusGone:
			// The ring no longer covers our position: catch up through
			// sealed WAL segments, or bootstrap when even those are gone.
			drain(resp)
			if attempt >= 8 {
				return fmt.Errorf("replication: no progress after %d catch-up rounds (position %d)", attempt, from)
			}
			if err := r.catchUp(ctx, from); err != nil {
				return err
			}
		default:
			err := fmt.Errorf("replication: stream: %s", httpStatus(resp))
			resp.Body.Close()
			return err
		}
	}
}

// applyStream decodes and applies frames until the connection drops.
func (r *Replica) applyStream(body io.Reader) error {
	r.setState(StateStreaming)
	dec := json.NewDecoder(body)
	for {
		var f Frame
		if err := dec.Decode(&f); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, context.Canceled) {
				return nil
			}
			return fmt.Errorf("replication: stream decode: %w", err)
		}
		if len(f.Recs) > 0 {
			n, err := r.db.ApplyReplicated(f.Recs)
			if err != nil {
				return err
			}
			r.mu.Lock()
			r.applied += uint64(n)
			r.mu.Unlock()
		}
		r.observe(f.LastSeq)
	}
}

// catchUp fetches the primary's sealed WAL segments and applies every
// record past our position; when the primary's snapshot floor has moved
// beyond us (or it has no WAL at all), it falls back to a full snapshot
// bootstrap.
func (r *Replica) catchUp(ctx context.Context, from uint64) error {
	r.setState(StateCatchingUp)
	resp, err := r.get(ctx, "/v1/replication/wal?after="+strconv.FormatUint(from, 10))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		floor, _ := strconv.ParseUint(resp.Header.Get(HeaderSnapshotSeq), 10, 64)
		if floor > from {
			// Records (from, floor] were truncated by a primary snapshot:
			// the log cannot reconstruct our gap.
			drain(resp)
			return r.bootstrap(ctx)
		}
		// Collect DDL plus doc records past our position, restore global
		// Seq order (appends from different shards interleave in the
		// file), and apply. Segment catch-up is rare enough that holding
		// the decoded batch in memory is fine.
		var recs []wal.Record
		err := wal.ScanReader(resp.Body, func(rec *wal.Record) error {
			if rec.Seq > from || rec.Kind == wal.KindCreateTable || rec.Kind == wal.KindCreateIndex {
				recs = append(recs, *rec)
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("replication: scanning shipped segments: %w", err)
		}
		sort.SliceStable(recs, func(i, j int) bool { return recs[i].Seq < recs[j].Seq })
		n, err := r.db.ApplyReplicated(recs)
		if err != nil {
			return err
		}
		r.mu.Lock()
		r.segCatchups++
		r.applied += uint64(n)
		r.lastContact = time.Now()
		r.mu.Unlock()
		return nil
	case http.StatusConflict, http.StatusNotFound:
		// In-memory primary: no log to ship, bootstrap instead.
		drain(resp)
		return r.bootstrap(ctx)
	default:
		return fmt.Errorf("replication: wal export: %s", httpStatus(resp))
	}
}

// bootstrap replaces the local state with a primary snapshot; the
// snapshot's floor becomes the position the stream resumes from.
func (r *Replica) bootstrap(ctx context.Context) error {
	r.setState(StateBootstrapping)
	resp, err := r.get(ctx, "/v1/replication/snapshot")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("replication: snapshot: %s", httpStatus(resp))
	}
	info, err := r.db.ImportSnapshot(resp.Body)
	if err != nil {
		return err
	}
	r.mu.Lock()
	r.bootstraps++
	r.synthDeletes += uint64(info.SyntheticDeletes)
	r.synthPuts += uint64(info.SyntheticPuts)
	r.lastContact = time.Now()
	r.mu.Unlock()
	r.opts.Logf("replication: bootstrapped from snapshot (floor %d, %d docs, %d synthetic deletes, %d synthetic puts)",
		info.Seq, info.Docs, info.SyntheticDeletes, info.SyntheticPuts)
	return nil
}

// observe folds one frame's progress report into the staleness state.
func (r *Replica) observe(primarySeq uint64) {
	now := time.Now()
	r.mu.Lock()
	r.frames++
	r.lastContact = now
	if primarySeq > r.primarySeq {
		r.primarySeq = primarySeq
	}
	if r.db.LastSeq() >= r.primarySeq {
		r.freshAsOf = now
	}
	r.mu.Unlock()
}

func (r *Replica) get(ctx context.Context, path string) (*http.Response, error) {
	if r.opts.Sharded {
		sep := "?"
		if strings.Contains(path, "?") {
			sep = "&"
		}
		path += sep + "shard=" + strconv.Itoa(r.opts.Shard)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.opts.Primary+path, nil)
	if err != nil {
		return nil, err
	}
	if r.opts.Token != "" {
		req.Header.Set("Authorization", "Bearer "+r.opts.Token)
	}
	return r.opts.Client.Do(req)
}

func (r *Replica) setState(st State) {
	r.mu.Lock()
	if !r.stopped && r.state != StatePromoted {
		r.state = st
	}
	r.mu.Unlock()
}

func (r *Replica) isStopped() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stopped
}

// DropConnection kills the in-flight primary connection; the loop
// reconnects with backoff. Exposed for chaos testing and operators
// forcing a re-dial.
func (r *Replica) DropConnection() {
	r.mu.Lock()
	cancel := r.cancel
	r.cancel = nil
	r.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// Stop ends replication (idempotent): the in-flight connection is
// cancelled, the current batch finishes applying, and the loop exits.
// The store stays read-only — use Promote to make it writable.
func (r *Replica) Stop() {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		<-r.done
		return
	}
	r.stopped = true
	cancel := r.cancel
	close(r.stop)
	if !r.started {
		// The loop never ran, so nothing else will close done.
		close(r.done)
	}
	r.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	<-r.done
}

// Promote ends replication and makes the local store writable. The
// replica's own commit pipeline keeps serving its subscribers (InvaliDB,
// SSE feeds, chained replicas): new writes continue the sequence right
// after the last replicated one, so downstream consumers simply re-point
// at the promoted node with no gap and no re-subscription. Any batch in
// flight is fully applied before writes are accepted — promotion never
// tears a batch.
//
// Promote is idempotent; it reports whether this call performed the
// transition (false when the replica was already promoted), so callers
// retrying a partially applied multi-shard promote can tell a fresh flip
// from a re-delivery.
func (r *Replica) Promote() bool {
	r.Stop()
	r.db.SetReadOnly(false)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.state == StatePromoted {
		return false
	}
	r.state = StatePromoted
	return true
}

// Status is a point-in-time view of the replica, served by the replica's
// /v1/replication/status endpoint and CLI repl-status.
type Status struct {
	State   State  `json:"state"`
	Primary string `json:"primary"`
	// Shard is the primary shard this replica follows (-1 unsharded).
	Shard int `json:"shard"`
	// LastSeq is the newest sequence applied locally; PrimaryLastSeq the
	// newest the primary has reported; LagSeq their difference.
	LastSeq        uint64 `json:"lastSeq"`
	PrimaryLastSeq uint64 `json:"primaryLastSeq"`
	LagSeq         uint64 `json:"lagSeq"`
	// StalenessMs bounds how stale reads are: the time since the replica
	// last provably held everything the primary had acknowledged (applied
	// sequence caught up to the primary's reported LastSeq). -1 until
	// first reaching that point.
	StalenessMs float64 `json:"stalenessMs"`
	// LastContactMs is the time since any frame or transfer from the
	// primary. -1 before first contact.
	LastContactMs float64 `json:"lastContactMs"`
	ReadOnly      bool    `json:"readOnly"`

	Bootstraps      uint64 `json:"bootstraps"`
	SegmentCatchups uint64 `json:"segmentCatchups"`
	Reconnects      uint64 `json:"reconnects"`
	Frames          uint64 `json:"frames"`
	RecordsApplied  uint64 `json:"recordsApplied"`
	// SyntheticDeletes/SyntheticPuts count the synthetic events
	// re-bootstrap imports published for documents deleted (resp. created
	// or re-versioned) inside collapsed snapshot ranges — the signal that
	// local subscribers (InvaliDB, SSE) were actively converged instead
	// of left holding stale entries.
	SyntheticDeletes uint64 `json:"syntheticDeletes"`
	SyntheticPuts    uint64 `json:"syntheticPuts"`
}

// Status reports the replica's current state and staleness bound.
func (r *Replica) Status() Status {
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	shard := -1
	if r.opts.Sharded {
		shard = r.opts.Shard
	}
	st := Status{
		State:            r.state,
		Primary:          r.opts.Primary,
		Shard:            shard,
		LastSeq:          r.db.LastSeq(),
		PrimaryLastSeq:   r.primarySeq,
		StalenessMs:      -1,
		LastContactMs:    -1,
		ReadOnly:         r.db.IsReadOnly(),
		Bootstraps:       r.bootstraps,
		SegmentCatchups:  r.segCatchups,
		Reconnects:       r.reconnects,
		Frames:           r.frames,
		RecordsApplied:   r.applied,
		SyntheticDeletes: r.synthDeletes,
		SyntheticPuts:    r.synthPuts,
	}
	if st.PrimaryLastSeq > st.LastSeq {
		st.LagSeq = st.PrimaryLastSeq - st.LastSeq
	}
	if !r.freshAsOf.IsZero() {
		st.StalenessMs = float64(now.Sub(r.freshAsOf)) / float64(time.Millisecond)
	}
	if !r.lastContact.IsZero() {
		st.LastContactMs = float64(now.Sub(r.lastContact)) / float64(time.Millisecond)
	}
	return st
}

// drain discards a response body so the connection can be reused.
func drain(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}

func httpStatus(resp *http.Response) string {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	if len(body) > 0 {
		return fmt.Sprintf("%s: %s", resp.Status, body)
	}
	return resp.Status
}
