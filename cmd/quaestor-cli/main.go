// Command quaestor-cli is a command-line client for a Quaestor server.
//
// Usage:
//
//	quaestor-cli -url http://localhost:8080 <command> [args]
//
// Commands:
//
//	create-table <table>                 create a table
//	create-index <table> <field.path>    create a secondary index
//	indexes <table>                      list a table's indexed paths
//	insert <table> <json>                insert a document ("_id" required)
//	get <table> <id>                     read a record (prints caching headers)
//	put <table> <id> <json>              upsert a record
//	delete <table> <id>                  delete a record
//	query <table> <filter-json> [sort] [limit] [offset]
//	subscribe <table> <filter-json>      stream change events (SSE)
//	file-put <name> <content-type> <file-path>
//	file-get <name>                      print file content
//	ebf                                  show the current filter's metadata
//	stats                                server statistics
//	snapshot                             snapshot the durable store (truncates WAL)
//	wal-info                             durability state: segments, batches, recovery
//	repl-status                          replication role, lag and staleness bound
//	promote                              promote a replica to a writable primary
//	cluster-map                          versioned shard map (consistent-hash topology)
//
// A bearer token for servers with authorization enabled is passed via
// -token.
package main

import (
	"bufio"
	"bytes"
	"encoding/base64"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"

	"quaestor/internal/bloom"
	"quaestor/internal/server"
)

type cli struct {
	base  string
	token string
	http  *http.Client
}

func main() {
	baseURL := flag.String("url", "http://localhost:8080", "Quaestor server base URL")
	token := flag.String("token", "", "bearer token (for servers with auth enabled)")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fail("missing command; see -h")
	}
	c := &cli{base: *baseURL, token: *token, http: http.DefaultClient}

	var err error
	switch cmd := args[0]; cmd {
	case "create-table":
		err = c.simple(http.MethodPost, "/v1/tables/"+arg(args, 1), nil)
	case "create-index":
		err = c.simple(http.MethodPost, "/v1/indexes/"+arg(args, 1),
			[]byte(fmt.Sprintf(`{"path":%q}`, arg(args, 2))))
	case "indexes":
		err = c.get("/v1/indexes/" + arg(args, 1))
	case "insert":
		err = c.simple(http.MethodPost, "/v1/db/"+arg(args, 1), []byte(arg(args, 2)))
	case "get":
		err = c.get("/v1/db/" + arg(args, 1) + "/" + arg(args, 2))
	case "put":
		err = c.simple(http.MethodPut, "/v1/db/"+arg(args, 1)+"/"+arg(args, 2), []byte(arg(args, 3)))
	case "delete":
		err = c.simple(http.MethodDelete, "/v1/db/"+arg(args, 1)+"/"+arg(args, 2), nil)
	case "query":
		err = c.query(args[1:])
	case "subscribe":
		err = c.subscribe(arg(args, 1), arg(args, 2))
	case "file-put":
		err = c.filePut(arg(args, 1), arg(args, 2), arg(args, 3))
	case "file-get":
		err = c.get("/v1/files/" + arg(args, 1))
	case "ebf":
		err = c.ebf()
	case "stats":
		err = c.get("/v1/stats")
	case "snapshot":
		err = c.simple(http.MethodPost, "/v1/admin/snapshot", nil)
	case "wal-info":
		err = c.walInfo()
	case "repl-status":
		err = c.replStatus()
	case "promote":
		err = c.simple(http.MethodPost, "/v1/replication/promote", nil)
	case "cluster-map":
		err = c.get("/v1/cluster/map")
	default:
		fail("unknown command %q", cmd)
	}
	if err != nil {
		fail("%v", err)
	}
}

func arg(args []string, i int) string {
	if i >= len(args) {
		fail("missing argument %d; see -h", i)
	}
	return args[i]
}

func fail(format string, a ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", a...)
	os.Exit(1)
}

func (c *cli) request(method, path string, body []byte) (*http.Response, error) {
	var rdr io.Reader
	if body != nil {
		rdr = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, c.base+path, rdr)
	if err != nil {
		return nil, err
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	return c.http.Do(req)
}

// simple performs a request and prints the JSON response.
func (c *cli) simple(method, path string, body []byte) error {
	resp, err := c.request(method, path, body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return printResponse(resp, false)
}

// get fetches a resource and prints body plus the caching headers.
func (c *cli) get(path string) error {
	resp, err := c.request(http.MethodGet, path, nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return printResponse(resp, true)
}

func printResponse(resp *http.Response, headers bool) error {
	if headers {
		for _, h := range []string{"Cache-Control", "ETag", "Age", "X-Cache", "X-Quaestor-Key", "X-Quaestor-Rep",
			"X-Quaestor-Replica", "X-Quaestor-Staleness-Ms", "X-Quaestor-Replica-Lag"} {
			if v := resp.Header.Get(h); v != "" {
				fmt.Printf("%s: %s\n", h, v)
			}
		}
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(data)))
	}
	var pretty bytes.Buffer
	if json.Indent(&pretty, data, "", "  ") == nil {
		fmt.Println(pretty.String())
	} else if len(data) > 0 {
		fmt.Println(string(data))
	} else {
		fmt.Println(resp.Status)
	}
	return nil
}

func (c *cli) query(args []string) error {
	if len(args) < 2 {
		fail("query <table> <filter-json> [sort] [limit] [offset]")
	}
	params := url.Values{}
	if args[1] != "{}" && args[1] != "" {
		params.Set("q", args[1])
	}
	if len(args) > 2 && args[2] != "" {
		params.Set("sort", args[2])
	}
	if len(args) > 3 {
		params.Set("limit", args[3])
	}
	if len(args) > 4 {
		params.Set("offset", args[4])
	}
	path := "/v1/db/" + args[0]
	if enc := params.Encode(); enc != "" {
		path += "?" + enc
	}
	return c.get(path)
}

func (c *cli) subscribe(table, filter string) error {
	params := url.Values{}
	params.Set("table", table)
	if filter != "" && filter != "{}" {
		params.Set("q", filter)
	}
	resp, err := c.request(http.MethodGet, "/v1/subscribe?"+params.Encode(), nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(data)))
	}
	fmt.Fprintln(os.Stderr, "subscribed; streaming events (Ctrl-C to stop)")
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		line := scanner.Text()
		if strings.HasPrefix(line, "data: ") {
			fmt.Println(strings.TrimPrefix(line, "data: "))
		}
	}
	return scanner.Err()
}

func (c *cli) filePut(name, contentType, filePath string) error {
	data, err := os.ReadFile(filePath)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPut, c.base+"/v1/files/"+name, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", contentType)
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return printResponse(resp, false)
}

func (c *cli) ebf() error {
	resp, err := c.request(http.MethodGet, "/v1/ebf", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var body server.EBFResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return err
	}
	raw, err := base64.StdEncoding.DecodeString(body.Filter)
	if err != nil {
		return err
	}
	f, err := bloom.Unmarshal(raw)
	if err != nil {
		return err
	}
	fmt.Printf("bits: %d (%.1f KB)\n", f.M(), float64(f.M())/8/1024)
	fmt.Printf("hash functions: %d\n", f.K())
	fmt.Printf("stale entries: %d\n", body.Entries)
	fmt.Printf("set bits: %d (%.2f%% load)\n", f.PopCount(), 100*float64(f.PopCount())/float64(f.M()))
	fmt.Printf("estimated false positive rate: %.4f\n", f.EstimatedFalsePositiveRate())
	return nil
}

// replStatus prints the node's replication role: a primary reports its
// sequence, a replica its lag and staleness bound.
func (c *cli) replStatus() error {
	resp, err := c.request(http.MethodGet, "/v1/replication/status", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(data)))
	}
	// A sharded replica answers with one status object per shard.
	if len(data) > 0 && data[0] == '[' {
		var pretty bytes.Buffer
		if err := json.Indent(&pretty, data, "", "  "); err != nil {
			return err
		}
		fmt.Println(pretty.String())
		return nil
	}
	var st struct {
		Role           string  `json:"role"`
		State          string  `json:"state"`
		Primary        string  `json:"primary"`
		LastSeq        uint64  `json:"lastSeq"`
		PrimaryLastSeq uint64  `json:"primaryLastSeq"`
		LagSeq         uint64  `json:"lagSeq"`
		StalenessMs    float64 `json:"stalenessMs"`
		Bootstraps     uint64  `json:"bootstraps"`
		Reconnects     uint64  `json:"reconnects"`
		RecordsApplied uint64  `json:"recordsApplied"`
	}
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	if st.Role == "primary" {
		fmt.Printf("role: primary (last seq %d)\n", st.LastSeq)
		return nil
	}
	fmt.Printf("role: replica of %s\n", st.Primary)
	fmt.Printf("state: %s\n", st.State)
	fmt.Printf("applied seq: %d (primary at %d, lag %d)\n", st.LastSeq, st.PrimaryLastSeq, st.LagSeq)
	if st.StalenessMs >= 0 {
		fmt.Printf("staleness bound: %.0fms\n", st.StalenessMs)
	} else {
		fmt.Println("staleness bound: not yet caught up")
	}
	fmt.Printf("bootstraps: %d, reconnects: %d, records applied: %d\n", st.Bootstraps, st.Reconnects, st.RecordsApplied)
	return nil
}

func (c *cli) walInfo() error {
	resp, err := c.request(http.MethodGet, "/v1/stats", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var body server.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return err
	}
	d := body.Durability
	if d == nil {
		fmt.Println("store is in-memory (server started without -data-dir)")
		return nil
	}
	fmt.Printf("data dir: %s\n", d.DataDir)
	fmt.Printf("wal: %d segment(s), %d bytes, fsync=%s\n", d.WAL.Segments, d.WAL.SegmentBytes, d.WAL.Fsync)
	fmt.Printf("appends: %d in %d batches (%.2f records/batch), %d fsyncs\n",
		d.WAL.Appends, d.WAL.Batches, d.WAL.MeanBatch, d.WAL.Fsyncs)
	for _, b := range d.WAL.BatchSizes {
		if b.Le == 0 {
			fmt.Printf("  batch >1024: %d\n", b.Count)
		} else {
			fmt.Printf("  batch ≤%4d: %d\n", b.Le, b.Count)
		}
	}
	if s := d.LastSnapshot; s != nil {
		fmt.Printf("last snapshot: seq %d, %d docs, %d bytes at %s\n", s.Seq, s.Docs, s.Bytes, s.At.Format(time.RFC3339))
	} else {
		fmt.Println("last snapshot: none")
	}
	r := d.Recovery
	fmt.Printf("recovery: %d docs from snapshot (seq %d) + %d log records, torn tail: %v, last seq %d, %.1fms\n",
		r.SnapshotDocs, r.SnapshotSeq, r.ReplayedRecords, r.TornTail, r.LastSeq, r.TookMs)
	return nil
}
