// Command quaestor-server runs a standalone Quaestor DBaaS node: the REST
// API over a sharded document store, with the Expiring Bloom Filter, TTL
// estimation and an embedded InvaliDB cluster. Put any HTTP caches (CDN,
// reverse proxy such as Varnish, browser caches) in front — responses
// carry standard Cache-Control/ETag headers, and the server purges
// registered reverse proxies on invalidation.
//
// With -shards N > 1 the node runs a single-process multi-primary
// cluster: N independent shard stores (each with its own WAL, commit
// pipeline and sequence space) behind a consistent-hash router. Writes
// hash to exactly one shard's pipeline, point reads route directly, and
// queries scatter-gather through the ordered merge. GET /v1/cluster/map
// serves the versioned shard map for shard-aware clients.
//
// With -data-dir the store is durable: writes go through a segmented
// group-commit WAL before they are acknowledged, POST /v1/admin/snapshot
// takes point-in-time snapshots (-auto-snapshot-mb takes them
// automatically once the WAL grows past a threshold), and restart
// recovers snapshot + log tail (see /v1/stats for the recovery and WAL
// counters). Sharded, each shard keeps its own lineage under
// data-dir/shard-i.
//
// With -replica-of the node runs as a read-only log-shipping replica of
// another server: it bootstraps from the primary's snapshot, follows its
// ordered commit pipeline, serves reads with staleness headers, rejects
// writes with 503, and can be promoted to a writable primary via
// POST /v1/replication/promote (quaestor-cli promote). A sharded replica
// (-replica-of with -shards N) runs one replication loop per shard
// against the primary's per-shard streams (?shard=i).
//
// With -advertise-replicas (and optionally -advertise-primary) the node
// publishes its read topology at GET /v1/cluster/replicas; SDK clients
// dialed with DiscoverReplicas route staleness-bounded reads across the
// advertised replica endpoints and fall back to the primary.
//
// With -failover the node also runs an embedded failover coordinator: it
// heartbeats the supervised primary, and when the primary stays dead past
// the failure threshold it elects the freshest candidate replica per
// shard, promotes it, rewrites the shard map (epoch bump) on every
// survivor, and fences the old primary if it comes back. Run it on a
// replica (-replica-of) with -advertise-self so the replica can elect and
// advertise itself.
//
// Usage:
//
//	quaestor-server -addr :8080 -tables posts,users \
//	    -query-partitions 4 -object-partitions 2 -mode quaestor \
//	    -data-dir ./data -fsync always
//
//	quaestor-server -addr :8080 -shards 4 -data-dir ./data
//
//	quaestor-server -addr :8081 -replica-of http://localhost:8080 \
//	    -shards 4 -data-dir ./replica-data
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"
	"time"

	"quaestor/internal/cluster"
	"quaestor/internal/coordinator"
	"quaestor/internal/invalidb"
	"quaestor/internal/replication"
	"quaestor/internal/server"
	"quaestor/internal/store"
	"quaestor/internal/wal"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	tables := flag.String("tables", "posts", "comma-separated tables to create at startup")
	indexes := flag.String("indexes", "", "comma-separated table:field.path secondary indexes to create at startup (e.g. posts:tags,posts:author)")
	queryParts := flag.Int("query-partitions", 2, "InvaliDB query partitions (columns)")
	objectParts := flag.Int("object-partitions", 2, "InvaliDB object partitions (rows)")
	maxQueries := flag.Int("max-queries", 10000, "InvaliDB active query capacity (0 = unlimited)")
	modeName := flag.String("mode", "quaestor", "cache mode: quaestor, cdn-only, client-only, uncached")
	shards := flag.Int("shards", 1, "cluster shards: independent stores + commit pipelines, writes consistent-hashed across them (1 = single node)")
	tableShards := flag.Int("table-shards", 16, "store lock-striping shards per table within each node")
	dataDir := flag.String("data-dir", "", "enable durability: WAL + snapshots under this directory (empty = in-memory)")
	fsyncMode := flag.String("fsync", "always", "WAL fsync policy: always, interval, never")
	fsyncInterval := flag.Duration("fsync-interval", 25*time.Millisecond, "max sync lag under -fsync interval")
	segmentMB := flag.Int64("wal-segment-mb", 8, "WAL segment rotation threshold in MiB")
	autoSnapMB := flag.Int64("auto-snapshot-mb", 0, "snapshot automatically once the WAL reaches this many MiB (0 = manual snapshots only)")
	replicaOf := flag.String("replica-of", "", "run as a read-only log-shipping replica of this primary base URL (e.g. http://primary:8080)")
	replicaName := flag.String("replica-name", "", "replica id reported in the primary's pipeline stats (default: the listen address)")
	advertisePrimary := flag.String("advertise-primary", "", "primary base URL advertised to clients via GET /v1/cluster/replicas (default: none)")
	advertiseReplicas := flag.String("advertise-replicas", "", "comma-separated replica base URLs advertised via GET /v1/cluster/replicas for staleness-bounded read routing")
	advertiseSelf := flag.String("advertise-self", "", "this node's own externally reachable base URL; a promoted replica advertises it as the new primary")
	failover := flag.Bool("failover", false, "run an embedded failover coordinator supervising -failover-primary (see internal/coordinator)")
	failoverPrimary := flag.String("failover-primary", "", "primary base URL the coordinator supervises (default: -replica-of)")
	failoverReplicas := flag.String("failover-replicas", "", "comma-separated candidate replica base URLs the coordinator elects a new primary from (default: -advertise-self)")
	failoverHeartbeat := flag.Duration("failover-heartbeat", 500*time.Millisecond, "coordinator heartbeat probe interval")
	failoverThreshold := flag.Int("failover-threshold", 3, "consecutive failed probes before the coordinator declares the primary dead")
	failoverTimeout := flag.Duration("failover-timeout", 2*time.Second, "coordinator per-probe HTTP timeout")
	flag.Parse()

	var mode server.CacheMode
	switch *modeName {
	case "quaestor":
		mode = server.ModeFull
	case "cdn-only":
		mode = server.ModeCDNOnly
	case "client-only":
		mode = server.ModeClientOnly
	case "uncached":
		mode = server.ModeUncached
	default:
		log.Fatalf("unknown mode %q", *modeName)
	}

	fsync, err := wal.ParseFsyncPolicy(*fsyncMode)
	if err != nil {
		log.Fatal(err)
	}
	storeOpts := store.Options{
		ShardsPerTable: *tableShards,
		DataDir:        *dataDir,
		Durability: store.Durability{
			Fsync:         fsync,
			FsyncInterval: *fsyncInterval,
			SegmentBytes:  *segmentMB << 20,
		},
		AutoSnapshotBytes: *autoSnapMB << 20,
	}
	router, err := cluster.Open(cluster.Options{Shards: *shards, Store: storeOpts})
	if err != nil {
		log.Fatalf("opening store: %v", err)
	}
	defer router.Close()
	for i, db := range router.Stores() {
		if st, ok := db.DurabilityStats(); ok {
			fmt.Printf("shard %d: durable store at %s (fsync=%s): recovered %d tables, %d docs from snapshot + %d log records (torn tail: %v), last seq %d in %.1fms\n",
				i, st.DataDir, fsync, st.Recovery.Tables, st.Recovery.SnapshotDocs,
				st.Recovery.ReplayedRecords, st.Recovery.TornTail, st.Recovery.LastSeq, st.Recovery.TookMs)
		}
	}

	srvOpts := &server.Options{
		Mode: mode,
		InvaliDB: &invalidb.Config{
			QueryPartitions:  *queryParts,
			ObjectPartitions: *objectParts,
			MaxQueries:       *maxQueries,
		},
	}
	var srv *server.Server
	if router.NumShards() > 1 {
		srv = server.NewSharded(router, srvOpts)
	} else {
		srv = server.New(router.Store(0), srvOpts)
	}
	defer srv.Close()

	if *advertisePrimary != "" || *advertiseReplicas != "" {
		var reps []string
		for _, u := range strings.Split(*advertiseReplicas, ",") {
			if u = strings.TrimSpace(u); u != "" {
				reps = append(reps, u)
			}
		}
		srv.SetReplicaEndpoints(*advertisePrimary, reps)
	}
	if *advertiseSelf != "" {
		srv.SetSelfURL(*advertiseSelf)
	}

	if *failover {
		primary := *failoverPrimary
		if primary == "" {
			primary = *replicaOf
		}
		if primary == "" {
			log.Fatal("-failover needs -failover-primary (or -replica-of) to supervise")
		}
		var cands []string
		for _, u := range strings.Split(*failoverReplicas, ",") {
			if u = strings.TrimSpace(u); u != "" {
				cands = append(cands, u)
			}
		}
		if len(cands) == 0 && *advertiseSelf != "" {
			cands = []string{*advertiseSelf}
		}
		if len(cands) == 0 {
			log.Fatal("-failover needs -failover-replicas (candidate endpoints to elect from)")
		}
		co, err := coordinator.New(coordinator.Options{
			Primary:           primary,
			Replicas:          cands,
			HeartbeatInterval: *failoverHeartbeat,
			ProbeTimeout:      *failoverTimeout,
			FailureThreshold:  *failoverThreshold,
			Logf:              log.Printf,
		})
		if err != nil {
			log.Fatalf("failover coordinator: %v", err)
		}
		co.Run()
		defer co.Stop()
		srv.AttachCoordinator(co)
	}

	if *replicaOf != "" {
		// Tables, indexes and documents all arrive through replication;
		// -tables/-indexes are for primaries and are ignored here. Sharded,
		// each shard store follows the primary's matching shard stream.
		name := *replicaName
		if name == "" {
			name = *addr
		}
		sharded := router.NumShards() > 1
		repls := make([]*replication.Replica, router.NumShards())
		for i, db := range router.Stores() {
			rname := name
			if sharded {
				rname = fmt.Sprintf("%s/shard-%d", name, i)
			}
			repls[i] = replication.New(replication.Options{
				Store:   db,
				Primary: *replicaOf,
				Name:    rname,
				Sharded: sharded,
				Shard:   i,
				Logf:    log.Printf,
			})
			repls[i].Run()
			defer repls[i].Stop()
		}
		if sharded {
			srv.AttachReplicas(repls)
		} else {
			srv.AttachReplica(repls[0])
		}
		fmt.Printf("quaestor-server listening on %s as read-only replica of %s, %d shard(s) (promote via POST /v1/replication/promote)\n",
			*addr, *replicaOf, router.NumShards())
		log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
	}

	for _, t := range strings.Split(*tables, ",") {
		t = strings.TrimSpace(t)
		if t == "" {
			continue
		}
		if err := router.CreateTable(t); err != nil {
			log.Fatalf("creating table %q: %v", t, err)
		}
	}
	for _, spec := range strings.Split(*indexes, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		table, path, ok := strings.Cut(spec, ":")
		if !ok {
			log.Fatalf("index spec %q must be table:field.path", spec)
		}
		if err := router.CreateIndex(table, path); err != nil {
			log.Fatalf("creating index %q: %v", spec, err)
		}
	}

	fmt.Printf("quaestor-server listening on %s (mode=%s, shards=%d, invalidb=%dx%d)\n",
		*addr, mode, router.NumShards(), *objectParts, *queryParts)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}
