// quaestor-lint is the project-invariant multichecker: it runs the
// internal/lint analyzer suite (lockio, stalesentinel, seqpublish,
// ctxdeadline) over the requested packages and exits non-zero on any
// unsuppressed finding. CI runs it as a blocking job via scripts/lint.
//
// Usage:
//
//	quaestor-lint [-only name,name] [-suppressions] [packages...]
//
// Packages default to ./... . Findings print as
// file:line:col: [analyzer] message. Waivers use inline comments of the
// form `//lint:quaestor <analyzer> -- <justification>` on (or directly
// above) the offending line; a waiver without a justification is itself
// a finding.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"quaestor/internal/lint"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	listSup := flag.Bool("suppressions", false, "list //lint:quaestor waivers and their justifications instead of linting")
	help := flag.Bool("help-analyzers", false, "describe each analyzer and exit")
	flag.Parse()

	analyzers := lint.All()
	if *help {
		for _, a := range analyzers {
			fmt.Printf("%s\n    %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		want := map[string]bool{}
		for _, n := range strings.Split(*only, ",") {
			want[strings.TrimSpace(n)] = true
		}
		var sel []*lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				sel = append(sel, a)
				delete(want, a.Name)
			}
		}
		if len(want) > 0 {
			fmt.Fprintf(os.Stderr, "quaestor-lint: unknown analyzer(s) in -only: %s\n", *only)
			os.Exit(2)
		}
		analyzers = sel
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader()
	if err != nil {
		fatal(err)
	}
	pkgs, err := lint.GoList(patterns...)
	if err != nil {
		fatal(err)
	}

	findings := 0
	for _, lp := range pkgs {
		pkg, err := loader.LoadDir(lp.Dir, lp.ImportPath)
		if err != nil {
			fatal(err)
		}
		if *listSup {
			for _, s := range lint.Suppressions(pkg) {
				fmt.Printf("%s:%d: [%s] %s\n", s.File, s.Line, strings.Join(s.Analyzers, ","), s.Reason)
			}
			continue
		}
		diags, err := lint.Run(pkg, analyzers)
		if err != nil {
			fatal(err)
		}
		for _, d := range diags {
			fmt.Println(d)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "quaestor-lint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "quaestor-lint:", err)
	os.Exit(2)
}
