// Command quaestor-bench regenerates the paper's evaluation: every table
// and figure of Section 6 (plus the ablations DESIGN.md calls out) as
// formatted text series.
//
// Usage:
//
//	quaestor-bench -exp all            # everything, quick scale
//	quaestor-bench -exp fig8a -scale 1 # one experiment at paper scale
//
// Experiments: fig1 fig8a fig8b fig8c fig8d fig8e fig8f fig9 fig10 fig11
// fig12 table1 ablation-coherence ablation-ttl all
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"quaestor/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (fig1, fig8a..fig8f, fig9, fig10, fig11, fig12, table1, ablation-coherence, ablation-ttl, durability, pipeline, querygrid, topology, readrouting, all)")
	scale := flag.Float64("scale", 0.25, "experiment scale: 1.0 = paper parameters, smaller = shorter runs")
	durable := flag.String("durable", "all", "durability experiment modes: all, memory, never, interval, always")
	out := flag.String("out", "", "write the selected experiment's machine-readable record (BENCH JSON) to this path")
	flag.Parse()

	sc := experiments.Scale(*scale)
	runners := map[string]func() string{
		"durability":         func() string { return experiments.Durability(sc, *durable) },
		"querygrid":          func() string { return experiments.QueryGridReport(sc, *out) },
		"topology":           func() string { return experiments.TopologyReport(sc, *out) },
		"readrouting":        func() string { return experiments.ReadRoutingReport(sc, *out) },
		"pipeline":           func() string { return experiments.Pipeline(sc) },
		"fig1":               func() string { return experiments.Figure1() },
		"fig8a":              func() string { return experiments.Figure8a(sc) },
		"fig8b":              func() string { return experiments.Figure8b(sc) },
		"fig8c":              func() string { return experiments.Figure8c(sc) },
		"fig8d":              func() string { return experiments.Figure8d(sc) },
		"fig8e":              func() string { return experiments.Figure8e(sc) },
		"fig8f":              func() string { return experiments.Figure8f(sc) },
		"fig9":               func() string { return experiments.Figure9(sc) },
		"fig10":              func() string { return experiments.Figure10(sc) },
		"fig11":              func() string { return experiments.Figure11(sc) },
		"fig12":              func() string { return experiments.Figure12(sc) },
		"table1":             func() string { return experiments.Table1(sc) },
		"ablation-coherence": func() string { return experiments.AblationCoherence(sc) },
		"ablation-ttl":       func() string { return experiments.AblationTTL(sc) },
		"ablation-est":       func() string { return experiments.AblationEstimators(sc) },
		"ablation-rep":       func() string { return experiments.AblationRepresentation(sc) },
	}
	order := []string{
		"fig1", "fig8a", "fig8b", "fig8c", "fig8d", "fig8e", "fig8f",
		"fig9", "fig10", "fig11", "fig12", "table1",
		"ablation-coherence", "ablation-ttl", "ablation-est", "ablation-rep",
		"durability", "pipeline", "querygrid", "topology", "readrouting",
	}

	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = order
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		run, ok := runners[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; known: %s, all\n", id, strings.Join(order, ", "))
			os.Exit(2)
		}
		start := time.Now()
		fmt.Print(run())
		fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
